"""Exhaustive verification over the entire small instance universe.

Rather than sampling, these tests sweep *every* monadic database on up to
three vertices (all edge-shape and label combinations over one or two
predicates) against *every* conjunctive query on up to two vertices, and
assert that all four deciders agree:

    brute-force enumeration == paths+SEQ == Theorem 4.7 == Theorem 5.3

This covers thousands of (D, Phi) pairs including every degenerate shape
(empty database, empty query, unlabeled vertices, '<=' cycles-free edges,
isolated vertices) — if any algorithm misreads a case of the paper on
these sizes, this module fails.
"""

from __future__ import annotations

from itertools import product

import pytest

from helpers import naive_entails_query
from repro.algorithms.conjunctive import (
    bounded_width_entails_dag,
    paths_entails_dag,
)
from repro.algorithms.disjunctive import theorem53_entails
from repro.algorithms.seq import seq_entails
from repro.core.atoms import Rel
from repro.core.database import LabeledDag
from repro.core.ordergraph import OrderGraph
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery

EDGE_CHOICES = (None, Rel.LT, Rel.LE)


def all_dags(n_vertices: int, preds: tuple[str, ...]):
    """Every labelled dag on ``n_vertices`` with forward edges."""
    names = [f"v{i}" for i in range(n_vertices)]
    pairs = [
        (names[i], names[j])
        for i in range(n_vertices)
        for j in range(i + 1, n_vertices)
    ]
    label_space = [
        frozenset(s)
        for s in _subsets(preds)
    ]
    for edges in product(EDGE_CHOICES, repeat=len(pairs)):
        for labels in product(label_space, repeat=n_vertices):
            graph = OrderGraph()
            for name in names:
                graph.add_vertex(name)
            for (a, b), rel in zip(pairs, edges):
                if rel is not None:
                    graph.add_edge(a, b, rel)
            yield LabeledDag(graph, dict(zip(names, labels)))


def _subsets(items):
    out = [()]
    for item in items:
        out += [s + (item,) for s in out]
    return out


def dag_to_query(dag: LabeledDag) -> ConjunctiveQuery:
    from repro.core.atoms import ProperAtom
    from repro.core.sorts import ordvar

    atoms = []
    for v, preds in dag.labels.items():
        for p in sorted(preds):
            atoms.append(ProperAtom(p, (ordvar(v),)))
    term_of = {v: ordvar(v) for v in dag.graph.vertices}
    atoms.extend(dag.graph.to_atoms(term_of))
    return ConjunctiveQuery.from_atoms(
        atoms, {ordvar(v) for v in dag.graph.vertices}
    )


@pytest.mark.parametrize("db_vertices", [0, 1, 2, 3])
def test_all_databases_vs_all_two_vertex_queries(db_vertices):
    """Exhaustive agreement of the four deciders over one predicate."""
    queries = [
        dag_to_query(q) for q in all_dags(2, ("P",))
    ] + [dag_to_query(q) for q in all_dags(1, ("P",))] + [
        ConjunctiveQuery.of()
    ]
    qdags = [(q, q.normalized().monadic_dag()) for q in queries]
    count = 0
    for dag in all_dags(db_vertices, ("P",)):
        for q, qdag in qdags:
            expected = naive_entails_query(dag, q)
            assert paths_entails_dag(dag, qdag) == expected, (dag, q)
            assert bounded_width_entails_dag(dag, qdag) == expected, (dag, q)
            assert theorem53_entails(dag, q) == expected, (dag, q)
            count += 1
    assert count > 0


def test_two_predicates_exhaustive_small():
    """Two predicates, two-vertex databases and queries: full sweep."""
    queries = [dag_to_query(q) for q in all_dags(2, ("P", "Q"))]
    qdags = [(q, q.normalized().monadic_dag()) for q in queries]
    for dag in all_dags(2, ("P", "Q")):
        for q, qdag in qdags:
            expected = naive_entails_query(dag, q)
            assert paths_entails_dag(dag, qdag) == expected, (dag, q)
            assert bounded_width_entails_dag(dag, qdag) == expected, (dag, q)


def test_sequential_queries_exhaustive():
    """SEQ vs brute force over every width-1 query on the 3-vertex dbs."""
    from repro.flexiwords.flexiword import FlexiWord

    words = []
    letters = [frozenset(), frozenset({"P"})]
    for a in letters:
        words.append(FlexiWord((a,), ()))
        for rel in (Rel.LT, Rel.LE):
            for b in letters:
                words.append(FlexiWord((a, b), (rel,)))
    for dag in all_dags(3, ("P",)):
        for p in words:
            expected = all(
                _word_sat(w, p) for w in _models(dag)
            )
            assert seq_entails(dag, p) == expected, (dag.to_database(), p)


def test_disjunctions_exhaustive_tiny():
    """Theorem 5.3 on every 2-disjunct pair of 1-vertex queries."""
    singles = [dag_to_query(q) for q in all_dags(1, ("P", "Q"))]
    for dag in all_dags(2, ("P", "Q")):
        for q1 in singles:
            for q2 in singles:
                query = DisjunctiveQuery.of(q1, q2)
                expected = naive_entails_query(dag, query)
                assert theorem53_entails(dag, query) == expected


def _models(dag):
    from repro.core.models import iter_minimal_words

    return iter_minimal_words(dag)


def _word_sat(word, p):
    from helpers import naive_word_satisfies_flexi

    return naive_word_satisfies_flexi(word, p)
