"""Fault-injection tests: the engine under deterministic partial failure.

Each :mod:`repro.engine.faults` site is driven end to end and the
hardened path is held to the differential standard of the rest of the
suite: whatever the failure — a worker crashing mid-batch, hanging past
the reply timeout, replying late, losing a resync delta — the pool's
results must be byte-for-byte those of sequential ``execute_many``.
Plus the rule/spec machinery itself, the reply-timeout env knobs, the
pool's finalize guard, and the submit-time read validation that keeps
pipelined streams at exact raise-point parity.
"""

from __future__ import annotations

import gc
import logging

import pytest

from repro.api import Session
from repro.core.atoms import ProperAtom, lt
from repro.core.database import IndefiniteDatabase
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.core.sorts import obj, ordc, ordvar
from repro.engine import (
    DaemonPool,
    Mutation,
    QueryRequest,
    execute_many,
    execute_stream,
)
from repro.engine import faults
from repro.engine.faults import FaultRule, InjectedCrash
from repro.engine.pool import (
    DEFAULT_REPLY_RETRIES,
    DEFAULT_REPLY_TIMEOUT,
    REPLY_RETRIES_ENV,
    REPLY_TIMEOUT_ENV,
    _reply_retries_default,
    _reply_timeout_default,
)

t1, t2 = ordvar("t1"), ordvar("t2")
u, v = ordc("u"), ordc("v")


def P(t):
    return ProperAtom("P", (t,))


def Q(t):
    return ProperAtom("Q", (t,))


@pytest.fixture(autouse=True)
def _clean_faults():
    """No rule installed by one test may leak into the next."""
    faults.reset()
    yield
    faults.reset()


def outcome_of(fn):
    """(tag, payload): a comparable summary of a call that may raise."""
    try:
        return ("ok", fn())
    except Exception as exc:  # noqa: BLE001 - parity is the point
        return ("raise", type(exc), str(exc))


def _db_requests():
    db = IndefiniteDatabase.of(P(u), Q(v), lt(u, v))
    return db, [
        QueryRequest(ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))),
        QueryRequest(ConjunctiveQuery.of(Q(t1))),
        QueryRequest(ConjunctiveQuery.of(P(t1)), free_vars=()),
    ]


class TestFaultRule:
    def test_after_times_counters(self):
        rule = FaultRule("wal.torn_write", after=2, times=2)
        assert [rule.check() for _ in range(6)] == [
            False, False, True, True, False, False,
        ]

    def test_times_zero_is_unlimited(self):
        rule = FaultRule("wal.torn_write", times=0)
        assert all(rule.check() for _ in range(10))

    def test_prob_is_deterministic_per_seed(self):
        fires = [
            FaultRule("wal.torn_write", times=0, prob=0.5, seed=7).check()
            for _ in range(1)
        ]
        again = [
            FaultRule("wal.torn_write", times=0, prob=0.5, seed=7).check()
            for _ in range(1)
        ]
        assert fires == again
        rule_a = FaultRule("wal.torn_write", times=0, prob=0.5, seed=7)
        rule_b = FaultRule("wal.torn_write", times=0, prob=0.5, seed=7)
        assert [rule_a.check() for _ in range(50)] == [
            rule_b.check() for _ in range(50)
        ]

    def test_fire_returns_rule_with_params(self):
        faults.install([FaultRule(
            faults.SITE_WAL_TORN, params={"fraction": 0.25}
        )])
        rule = faults.fire(faults.SITE_WAL_TORN)
        assert rule is not None
        assert rule.param("fraction", 0.5) == 0.25
        assert faults.fire(faults.SITE_WAL_TORN) is None  # times=1 spent
        assert faults.fire(faults.SITE_WAL_COMPACT) is None  # not installed


class TestSpec:
    def test_parse_spec_full_grammar(self):
        rules = faults.parse_spec(
            "pool.worker.hang:seconds=1.5:after=2;"
            "wal.torn_write:fraction=0.25:times=0"
        )
        assert [r.site for r in rules] == [
            faults.SITE_WORKER_HANG, faults.SITE_WAL_TORN,
        ]
        assert rules[0].after == 2
        assert rules[0].params == {"seconds": 1.5}
        assert rules[1].times == 0
        assert rules[1].params == {"fraction": 0.25}

    def test_malformed_entries_warn_and_drop(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.engine.faults"):
            rules = faults.parse_spec(
                "no.such.site;"              # unknown site
                "pool.worker.hang:seconds;"  # missing =value
                "wal.torn_write:fraction=lots;"  # non-numeric
                "pool.worker.delay:seconds=0.01"  # the one valid entry
            )
        assert [r.site for r in rules] == [faults.SITE_WORKER_DELAY]
        assert "unknown fault site" in caplog.text
        assert "malformed" in caplog.text
        assert "not numeric" in caplog.text

    def test_spec_roundtrip(self):
        spec = (
            "pool.worker.crash:after=1:times=3:code=2;"
            "wal.compact.crash:stage=1"
        )
        rules = faults.parse_spec(spec)
        again = faults.parse_spec(faults.spec_of(rules))
        assert [(r.site, r.after, r.times, r.prob, r.seed, r.params)
                for r in rules] == [
            (r.site, r.after, r.times, r.prob, r.seed, r.params)
            for r in again
        ]

    def test_install_from_env(self):
        assert not faults.install_from_env({})
        assert not faults.install_from_env({"REPRO_FAULTS": ""})
        assert faults.install_from_env(
            {"REPRO_FAULTS": "pool.worker.delay:seconds=0.01"}
        )
        assert faults.active()
        faults.reset()
        # an all-malformed spec installs nothing
        assert not faults.install_from_env({"REPRO_FAULTS": "no.such.site"})


def _parallel_pool(session, **kwargs):
    pool = DaemonPool(session, workers=2, **kwargs)
    if not pool.parallel:
        pool.close()
        pytest.skip("no process pool in this environment")
    return pool


class TestWorkerCrash:
    def test_crash_degrades_and_results_match(self, caplog):
        db, requests = _db_requests()
        sequential = execute_many(Session(db), requests)
        faults.install([FaultRule(faults.SITE_WORKER_CRASH)])
        with _parallel_pool(Session(db)) as pool:
            with caplog.at_level(logging.WARNING, logger="repro.engine.pool"):
                got = pool.execute_many(requests)
            assert got == sequential
            assert not pool.parallel  # degraded, not wedged
            assert "reason=worker-dead" in caplog.text
            # the degraded pool keeps serving, in-process
            assert pool.execute_many(requests) == sequential


class TestWorkerHang:
    def test_hang_trips_timeout_and_results_match(self, caplog):
        db, requests = _db_requests()
        sequential = execute_many(Session(db), requests)
        faults.install([FaultRule(
            faults.SITE_WORKER_HANG, params={"seconds": 30.0}
        )])
        with _parallel_pool(
            Session(db), reply_timeout=0.1, reply_retries=1
        ) as pool:
            with caplog.at_level(logging.WARNING, logger="repro.engine.pool"):
                got = pool.execute_many(requests)
        assert got == sequential
        assert "reply timed out" in caplog.text       # the bounded retry
        assert "reason=reply-timeout" in caplog.text  # then the degrade
        assert "worker=" in caplog.text and "waited=" in caplog.text


class TestWorkerDelay:
    def test_slow_worker_answers_within_retries(self):
        # slow is not dead: the reply lands inside the retry budget, so
        # the pool stays parallel and nothing degrades
        db, requests = _db_requests()
        sequential = execute_many(Session(db), requests)
        faults.install([FaultRule(
            faults.SITE_WORKER_DELAY, times=0, params={"seconds": 0.05}
        )])
        with _parallel_pool(Session(db), reply_timeout=5.0) as pool:
            got = pool.execute_many(requests)
            assert got == sequential
            assert pool.parallel

    def test_env_spec_reaches_workers(self, monkeypatch):
        # REPRO_FAULTS is the cross-process carrier: the parent installs
        # nothing in-process, yet the workers pick the delay up
        monkeypatch.setenv(
            faults.FAULTS_ENV, "pool.worker.delay:seconds=0.01:times=0"
        )
        assert not faults.active()
        db, requests = _db_requests()
        sequential = execute_many(Session(db), requests)
        with _parallel_pool(Session(db)) as pool:
            assert pool.execute_many(requests) == sequential
            assert pool.parallel


class TestResyncDrop:
    def test_stale_worker_heals_and_pool_stays_parallel(self, caplog):
        db, requests = _db_requests()
        session = Session(db)
        with _parallel_pool(session) as pool:
            faults.install([FaultRule(
                faults.SITE_RESYNC_DROP, params={"worker": 0}
            )])
            session.assert_facts(ProperAtom("Tag", (obj("zz"),)))
            pool.resnapshot(session)  # worker 0 never sees this delta
            with caplog.at_level(logging.WARNING, logger="repro.engine.pool"):
                got = pool.execute_many(requests)
            assert got == execute_many(Session(session.db), requests)
            assert pool.parallel  # a desync heals; it does not degrade
            assert "stale" in caplog.text and "healing" in caplog.text
            # the healed worker serves later resyncs and batches again
            session.assert_facts(P(ordc("w9")))
            pool.resnapshot(session)
            got = pool.execute_many(requests)
            assert got == execute_many(Session(session.db), requests)
            assert pool.parallel


class TestReplyKnobs:
    def test_reply_timeout_env_override(self, monkeypatch):
        monkeypatch.setenv(REPLY_TIMEOUT_ENV, "0.5")
        assert _reply_timeout_default() == 0.5
        monkeypatch.setenv(REPLY_TIMEOUT_ENV, "not-a-number")
        assert _reply_timeout_default() == DEFAULT_REPLY_TIMEOUT
        monkeypatch.setenv(REPLY_TIMEOUT_ENV, "0")
        assert _reply_timeout_default() == DEFAULT_REPLY_TIMEOUT
        monkeypatch.setenv(REPLY_TIMEOUT_ENV, "-3")
        assert _reply_timeout_default() == DEFAULT_REPLY_TIMEOUT

    def test_reply_retries_env_override(self, monkeypatch):
        monkeypatch.setenv(REPLY_RETRIES_ENV, "5")
        assert _reply_retries_default() == 5
        monkeypatch.setenv(REPLY_RETRIES_ENV, "0")
        assert _reply_retries_default() == 0  # zero retries is valid
        monkeypatch.setenv(REPLY_RETRIES_ENV, "nope")
        assert _reply_retries_default() == DEFAULT_REPLY_RETRIES
        monkeypatch.setenv(REPLY_RETRIES_ENV, "-1")
        assert _reply_retries_default() == DEFAULT_REPLY_RETRIES


class TestFinalizeGuard:
    def test_dropped_pool_stops_its_daemons(self):
        db, _requests = _db_requests()
        pool = _parallel_pool(Session(db))
        procs = list(pool._procs)
        del pool  # no close(): the weakref.finalize guard must fire
        gc.collect()
        for proc in procs:
            proc.join(timeout=10)
            assert not proc.is_alive()

    def test_close_after_finalize_is_noop(self):
        db, _requests = _db_requests()
        pool = DaemonPool(Session(db), workers=2)
        pool.close()
        pool.close()  # idempotent, finalizer already detached
        assert not pool.parallel


BAD_READS = [
    # two disjuncts, but 'paths' needs a single conjunctive one
    QueryRequest(
        DisjunctiveQuery(
            (ConjunctiveQuery.of(P(t1)), ConjunctiveQuery.of(Q(t1)))
        ),
        method="paths",
    ),
    # width-2 order dag is not sequential
    QueryRequest(ConjunctiveQuery.of(P(t1), Q(t2)), method="seq"),
    # non-monadic input for a monadic-only method
    QueryRequest(
        ConjunctiveQuery.of(ProperAtom("B", (ordc("u"), ordc("v")))),
        method="bounded_width",
    ),
]


class TestSubmitTimeValidation:
    def test_validate_matches_execution_errors_exactly(self):
        db, good = _db_requests()
        session = Session(db)
        for request in good + BAD_READS:
            ran = outcome_of(
                lambda r=request: execute_many(Session(db), [r])
            )
            checked = outcome_of(
                lambda r=request: r.prepare(session).validate()
            )
            if ran[0] == "raise":
                assert checked[0] == "raise"
                assert checked[1:] == ran[1:]  # same type, same message
            else:
                assert checked[0] == "ok"

    def test_pipelined_bad_read_raise_point_parity(self):
        # a raising read must leave the pipelined stream's session in
        # the exact state the sequential loop leaves it: writes before
        # the bad read applied, writes after it not
        db, _requests = _db_requests()
        ops = [
            QueryRequest(ConjunctiveQuery.of(P(t1))),
            Mutation("assert_facts", (ProperAtom("Tag", (obj("aa"),)),)),
            BAD_READS[0],
            Mutation("assert_facts", (ProperAtom("Tag", (obj("bb"),)),)),
        ]
        seq_session = Session(db)
        want = outcome_of(lambda: execute_stream(seq_session, list(ops)))
        assert want[0] == "raise" and want[1] is ValueError
        piped_session = Session(db)
        got = outcome_of(
            lambda: execute_stream(piped_session, list(ops), workers=2)
        )
        assert got[:2] == want[:2] and got[2] == want[2]
        assert piped_session.db == seq_session.db
        assert ProperAtom("Tag", (obj("aa"),)) in seq_session.db.proper_atoms
        assert (
            ProperAtom("Tag", (obj("bb"),)) not in seq_session.db.proper_atoms
        )


class TestInjectedCrashType:
    def test_injected_crash_is_a_repro_error(self):
        from repro.core.errors import ReproError

        assert issubclass(InjectedCrash, ReproError)


class TestEnvDifferential:
    """CI's fault-injection matrix entry point.

    The workflow runs this class once per ``REPRO_FAULTS`` value (one
    per injection site); locally, with no env set, it is a plain
    differential.  Whatever the environment injects — worker crash,
    hang, delay, dropped resync delta, torn WAL write, mid-compaction
    crash — the invariants must hold: pool results byte-for-byte equal
    sequential, and a recovered session byte-for-byte equal the oracle
    replay of everything that reached the log.
    """

    def test_pool_differential_under_env_faults(self):
        faults.install_from_env()
        db, requests = _db_requests()
        sequential = execute_many(Session(db), requests)
        session = Session(db)
        with DaemonPool(
            session, workers=2, reply_timeout=0.3, reply_retries=1
        ) as pool:
            assert pool.execute_many(requests) == sequential
            # a second batch across a mutation + resync: covers the
            # leader-side resync path (where pool.resync.drop fires) and
            # proves the pool keeps serving after any degrade/heal
            session.assert_facts(ProperAtom("Tag", (obj("env"),)))
            pool.resnapshot(session)
            got = pool.execute_many(requests)
            assert got == execute_many(Session(session.db), requests)

    def test_wal_differential_under_env_faults(self, tmp_path):
        import random

        from repro.engine.wal import WriteAheadLog, recover
        from repro.workloads.generators import mutation_class_stream

        faults.install_from_env()
        db, ops = mutation_class_stream(random.Random(5), n_rounds=2)
        live, oracle = Session(db), Session(db)
        path = str(tmp_path / "env.wal")
        wal = WriteAheadLog(path, sync="flush", compact_every=3)
        try:
            wal.attach(live)
        except InjectedCrash:
            pytest.skip(
                "env fault fires on the attach-time snapshot; use "
                "after=1 in the spec to reach the steady state"
            )
        for op in ops:
            try:
                op.apply(live)
            except InjectedCrash as exc:
                # a compaction crash happens AFTER the record hit the
                # log, a torn write INSTEAD of it — the oracle tracks
                # exactly what a recovering process can see
                if "compact" in str(exc):
                    op.apply(oracle)
                break
            op.apply(oracle)
        recovered = recover(path)
        assert recovered._proper == oracle._proper
        assert recovered._order == oracle._order
        assert recovered._gens() == oracle._gens()

    def test_replica_routing_differential_under_env_faults(self, tmp_path):
        """Routed reads under env faults == direct primary reads.

        All writes land *before* the faults arm, and the replica is
        allowed to catch up first — so whatever the environment then
        injects (a stalled follower, a skipped poll, a crashing
        replica, a torn write that can no longer happen) is pure read-
        path infrastructure failure for the router to absorb: every
        routed read must still return exactly the primary's payload.
        """
        import json
        import time

        from repro.engine.wal import WriteAheadLog
        from repro.server import ReplicaRouter, ReproClient, ServerThread

        def payload_of(reply):
            body = {
                k: v
                for k, v in reply.items()
                if k not in ("id", "seq", "applied_seq")
            }
            return json.dumps(body, sort_keys=True)

        path = str(tmp_path / "env-replica.wal")
        session = Session()
        wal = WriteAheadLog(path, sync="flush")
        wal.attach(session)
        primary = ServerThread(session, wal=wal, heartbeat_interval=0.05)
        p_addr = primary.start()
        replica = ServerThread(
            None, replica_of=path, poll_interval=0.01, heartbeat_timeout=5.0
        )
        r_addr = replica.start()
        try:
            reads = [
                ("answers", "Env(X)"),
                ("execute", "Env(a1)"),
                ("execute", "Env(zzz)"),
                ("answers", "Env(X) &"),  # a parse error is a payload too
            ]
            with ReproClient(*p_addr) as client:
                seq = 0
                for i in range(4):
                    seq = client.assert_facts(f"Env(a{i})")["seq"]
                expected = []
                for kind, arg in reads:
                    if kind == "answers":
                        reply = client.answers(arg, ["X"], check=False)
                    else:
                        reply = client.execute(arg, check=False)
                    expected.append(payload_of(reply))
            deadline = time.monotonic() + 30
            with ReproClient(*r_addr) as client:
                while client.stats()["applied_seq"] < seq:
                    assert time.monotonic() < deadline, "replica never caught up"
                    time.sleep(0.01)
            faults.install_from_env()
            router = ReplicaRouter(
                p_addr,
                [r_addr],
                timeout=30.0,
                wait_timeout=5.0,
                down_cooldown=0.05,
                backoff=0.01,
            )
            with router:
                router.last_write_seq = seq  # adopt the session's writes
                got = []
                for kind, arg in reads:
                    if kind == "answers":
                        reply = router.answers(arg, ["X"], check=False)
                    else:
                        reply = router.execute(arg, check=False)
                    assert reply.get("applied_seq", seq) >= seq
                    got.append(payload_of(reply))
            assert got == expected
        finally:
            faults.reset()
            replica.shutdown()
            primary.shutdown()
