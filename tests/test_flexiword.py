"""Tests for flexi-words: parsing, models, subword relation, entailment."""

from __future__ import annotations

import random

import pytest

from helpers import naive_word_satisfies_flexi
from repro.core.atoms import Rel
from repro.core.errors import ParseError
from repro.flexiwords.flexiword import FlexiWord, all_words, letter
from repro.flexiwords.subword import (
    flexi_entails,
    flexi_equiv,
    flexi_le,
    is_subword,
    word_model_satisfies,
)
from repro.workloads.generators import random_flexiword


class TestParsingAndPrinting:
    def test_roundtrip(self):
        for text in ["{P}", "{P,Q} < {R}", "{A} <= {} < {B,C}", ""]:
            w = FlexiWord.parse(text)
            assert FlexiWord.parse(str(w) if w else "") == w

    def test_empty(self):
        assert len(FlexiWord.parse("")) == 0
        assert not FlexiWord.empty()

    def test_bad_inputs(self):
        with pytest.raises(ParseError):
            FlexiWord.parse("{P} <")
        with pytest.raises(ParseError):
            FlexiWord.parse("{P")
        with pytest.raises(ParseError):
            FlexiWord.parse("P < Q")

    def test_separator_validation(self):
        with pytest.raises(ValueError):
            FlexiWord((letter("P"), letter("Q")), (Rel.NE,))
        with pytest.raises(ValueError):
            FlexiWord((letter("P"),), (Rel.LT,))

    def test_predicates_and_size(self):
        w = FlexiWord.parse("{P,Q} < {R}")
        assert w.predicates == {"P", "Q", "R"}
        assert w.size() == 4


class TestModels:
    def test_word_has_one_model(self):
        w = FlexiWord.parse("{P} < {Q}")
        assert list(w.models()) == [(letter("P"), letter("Q"))]

    def test_le_separator_doubles_models(self):
        w = FlexiWord.parse("{P} <= {Q} <= {R}")
        models = set(w.models())
        assert len(models) == 4
        assert (letter("P", "Q", "R"),) in models
        assert (letter("P"), letter("Q"), letter("R")) in models

    def test_models_of_empty(self):
        assert list(FlexiWord.empty().models()) == [()]


class TestSubword:
    def test_paper_example(self):
        """[P,Q][P][R] is a subword of [P,Q,R][R][P,R][P,Q,R]."""
        p = FlexiWord.word([{"P", "Q"}, {"P"}, {"R"}])
        q = FlexiWord.word([{"P", "Q", "R"}, {"R"}, {"P", "R"}, {"P", "Q", "R"}])
        assert is_subword(p, q)
        assert not is_subword(q, p)

    def test_proposition_4_5(self):
        """For words, entailment coincides with the subword relation."""
        rng = random.Random(0)
        for _ in range(300):
            p = random_flexiword(rng, rng.randrange(0, 4), le_prob=0)
            q = random_flexiword(rng, rng.randrange(0, 4), le_prob=0)
            assert flexi_entails(q, p) == is_subword(p, q)

    def test_rejects_flexiwords_with_le(self):
        with pytest.raises(ValueError):
            is_subword(FlexiWord.parse("{P} <= {Q}"), FlexiWord.parse("{P}"))


class TestFlexiEntailment:
    @pytest.mark.parametrize("seed", range(8))
    def test_against_model_enumeration(self, seed):
        """q |= p iff every minimal model of q satisfies p."""
        rng = random.Random(seed)
        for _ in range(80):
            q = random_flexiword(rng, rng.randrange(0, 4))
            p = random_flexiword(rng, rng.randrange(0, 4))
            expected = all(
                naive_word_satisfies_flexi(m, p) for m in q.models()
            )
            assert flexi_entails(q, p) == expected, f"q={q} p={p}"

    def test_equiv(self):
        a = FlexiWord.parse("{P} <= {P}")
        b = FlexiWord.parse("{P}")
        # a's models are {P}{P} and {P}; b's model is {P}.  Mutual
        # entailment: b |= a fails (one point cannot host t1 <= t2 with
        # both P? it can: t1 = t2!) — so they are equivalent.
        assert flexi_equiv(a, b)

    def test_word_model_satisfies(self):
        model = (letter("P"), letter("P", "Q"))
        assert word_model_satisfies(model, FlexiWord.parse("{P} <= {Q}"))
        assert word_model_satisfies(model, FlexiWord.parse("{P} < {Q}"))
        assert not word_model_satisfies(model, FlexiWord.parse("{Q} < {P}"))


class TestAllWords:
    def test_counts(self):
        assert len(list(all_words(("P",), 2))) == 4
        assert len(list(all_words(("P", "Q"), 1))) == 4

    def test_concat_and_slices(self):
        w = FlexiWord.parse("{P} < {Q} <= {R}")
        assert str(w.suffix(1)) == "{Q} <= {R}"
        assert str(w.prefix(2)) == "{P} < {Q}"
        glued = w.prefix(1).concat(Rel.LT, w.suffix(1))
        assert str(glued) == str(w)
