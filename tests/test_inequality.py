"""Tests for the Section 7 inequality extension."""

from __future__ import annotations

import random

import pytest

from repro.core.atoms import ProperAtom, le, lt, ne
from repro.core.database import IndefiniteDatabase
from repro.core.entailment import entails
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.core.sorts import ordc, ordvar
from repro.inequality.neq import (
    entails_with_neq,
    expand_conjunct_neq,
    expand_database_neq,
    expand_query_neq,
)

t1, t2, t3 = ordvar("t1"), ordvar("t2"), ordvar("t3")
u, v, w = ordc("u"), ordc("v"), ordc("w")


def P(t):
    return ProperAtom("P", (t,))


class TestQueryExpansion:
    def test_single_neq_doubles(self):
        q = ConjunctiveQuery.of(P(t1), P(t2), ne(t1, t2))
        expanded = expand_conjunct_neq(q)
        assert len(expanded) == 2
        assert all(not d.has_neq for d in expanded)

    def test_expansion_count(self):
        q = ConjunctiveQuery.of(P(t1), P(t2), P(t3), ne(t1, t2), ne(t2, t3))
        assert len(expand_conjunct_neq(q)) == 4

    def test_no_neq_identity(self):
        q = ConjunctiveQuery.of(P(t1))
        assert expand_conjunct_neq(q) == [q]

    def test_expansion_preserves_entailment(self):
        rng = random.Random(0)
        from repro.workloads.generators import random_monadic_database

        for _ in range(20):
            db = random_monadic_database(rng, rng.randrange(1, 4))
            q = ConjunctiveQuery.of(P(t1), P(t2), ne(t1, t2))
            expanded = expand_query_neq(q)
            assert entails(db, q) == entails(db, expanded)


class TestDatabaseExpansion:
    def test_split_two_ways(self):
        db = IndefiniteDatabase.of(P(u), P(v), ne(u, v))
        parts = expand_database_neq(db)
        assert len(parts) == 2
        assert all(not p.has_neq for p in parts)

    def test_inconsistent_branch_dropped(self):
        db = IndefiniteDatabase.of(P(u), P(v), lt(u, v), ne(u, v))
        parts = expand_database_neq(db)
        assert len(parts) == 1  # v < u branch contradicts u < v

    def test_expansion_equals_native_entailment(self):
        rng = random.Random(1)
        queries = [
            ConjunctiveQuery.of(P(t1), P(t2), lt(t1, t2)),
            ConjunctiveQuery.of(P(t1), P(t2), le(t1, t2)),
            ConjunctiveQuery.of(P(t1)),
        ]
        for _ in range(15):
            atoms = [P(u), P(v), P(w)]
            if rng.random() < 0.7:
                atoms.append(ne(u, v))
            if rng.random() < 0.5:
                atoms.append(ne(v, w))
            if rng.random() < 0.5:
                atoms.append(le(u, w))
            db = IndefiniteDatabase.from_atoms(atoms)
            for q in queries:
                native = entails(db, q)  # brute force handles '!=' natively
                via_expansion = entails_with_neq(db, q)
                assert native == via_expansion, f"db={db} q={q}"

    def test_neq_width_convention(self):
        db = IndefiniteDatabase.of(P(u), P(v), ne(u, v))
        # width ignores '!=' atoms per the Section 7 convention
        assert db.width() == 2


class TestSection7Semantics:
    def test_neq_forces_distinct_points(self):
        db = IndefiniteDatabase.of(P(u), P(v), ne(u, v))
        two_points = ConjunctiveQuery.of(P(t1), P(t2), lt(t1, t2))
        assert entails(db, two_points)

    def test_three_mutually_distinct(self):
        db = IndefiniteDatabase.of(
            P(u), P(v), P(w), ne(u, v), ne(v, w), ne(u, w)
        )
        chain3 = ConjunctiveQuery.of(
            P(t1), P(t2), P(t3), lt(t1, t2), lt(t2, t3)
        )
        assert entails(db, chain3)
        # without one of the inequalities the chain is not forced
        db2 = IndefiniteDatabase.of(P(u), P(v), P(w), ne(u, v), ne(v, w))
        assert not entails(db2, chain3)
