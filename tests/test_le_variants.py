"""Tests for the [<=]-only gadget variants (remarks after Thms 3.2, 4.6)."""

from __future__ import annotations

import random

import pytest

from repro.core.entailment import entails
from repro.reductions.le_variants import (
    _le_gadget,
    build_query_dag_le,
    reduction_claim_le,
    reduction_claim_le_tautology,
)
from repro.reductions.monotone3sat import MonotoneSatInstance
from repro.workloads.generators import random_dnf


class TestLeGadget:
    def test_gadget_d1_d2(self):
        """First-placed constant satisfies phi; the others do not."""
        from repro.core.atoms import ProperAtom, le
        from repro.core.database import IndefiniteDatabase
        from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
        from repro.core.sorts import ordc, ordvar

        db = IndefiniteDatabase.from_atoms(_le_gadget("u", "v", "w"))
        y, z = ordvar("y"), ordvar("z")

        def phi(const):
            return ConjunctiveQuery.of(
                ProperAtom("P", (const, y, z)), le(const, y), le(y, z)
            )

        # D1: the disjunction holds in every model ...
        assert entails(
            db,
            DisjunctiveQuery.of(phi(ordc("u")), phi(ordc("v")), phi(ordc("w"))),
        )
        # D2: ... but none of the disjuncts individually.
        for name in ("u", "v", "w"):
            assert not entails(db, phi(ordc(name)))

    def test_database_has_no_order_atoms(self):
        instance = MonotoneSatInstance(positive=(("p", "p", "p"),), negative=())
        db, _, _ = reduction_claim_le(instance)
        assert not db.order_atoms


class TestTheorem32LeVariant:
    def test_unsat_entailed(self):
        instance = MonotoneSatInstance(
            positive=(("p", "p", "p"),), negative=(("p", "p", "p"),)
        )
        db, query, expected = reduction_claim_le(instance)
        assert expected is True
        assert entails(db, query) is True

    def test_sat_not_entailed(self):
        instance = MonotoneSatInstance(
            positive=(("p", "q", "q"),), negative=(("q", "q", "q"),)
        )
        db, query, expected = reduction_claim_le(instance)
        assert expected is False
        assert entails(db, query) is False


class TestTheorem46LeVariant:
    def test_query_ladder_shape(self):
        qdag = build_query_dag_le(3)
        # all edges are '<='
        from repro.core.atoms import Rel

        assert all(rel is Rel.LE for _, _, rel in qdag.graph.edges())
        # markers alternate
        assert any("Podd" in lbl for lbl in map(sorted, qdag.labels.values()))

    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        rng = random.Random(500 + seed)
        n_letters = rng.randrange(1, 3)
        disjuncts = random_dnf(rng, n_letters, rng.randrange(1, 3), 2)
        dag, query, expected = reduction_claim_le_tautology(
            disjuncts, n_letters
        )
        assert entails(dag.to_database(), query) == expected

    def test_tautology_entailed(self):
        dag, query, expected = reduction_claim_le_tautology(
            [{"p0": True}, {"p0": False}], 1
        )
        assert expected is True and entails(dag.to_database(), query)
