"""Tests for model checking: the generic checker vs the monadic fast path."""

from __future__ import annotations

import random

import pytest

from helpers import naive_word_satisfies_dag
from repro.algorithms.modelcheck import (
    structure_satisfies,
    word_satisfies,
    word_satisfies_dag,
)
from repro.core.atoms import ProperAtom, le, lt, ne
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.models import iter_minimal_models
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.flexiwords.flexiword import FlexiWord
from repro.workloads.generators import (
    random_conjunctive_monadic_query,
    random_letter,
)

t1, t2 = ordvar("t1"), ordvar("t2")


class TestWordFastPath:
    @pytest.mark.parametrize("seed", range(10))
    def test_greedy_matches_naive(self, seed):
        rng = random.Random(seed)
        for _ in range(80):
            word = tuple(
                random_letter(rng, ("P", "Q", "R"))
                for _ in range(rng.randrange(0, 5))
            )
            q = random_conjunctive_monadic_query(rng, rng.randrange(0, 4))
            n = q.normalized()
            if n is None:
                continue
            qdag = n.monadic_dag()
            assert word_satisfies_dag(word, qdag) == naive_word_satisfies_dag(
                word, qdag
            ), f"word={word} q={q}"

    def test_disjunctive_word_check(self):
        word = (frozenset({"P"}), frozenset({"Q"}))
        q = DisjunctiveQuery.of(
            ConjunctiveQuery.of(ProperAtom("R", (t1,))),
            ConjunctiveQuery.of(ProperAtom("Q", (t1,))),
        )
        assert word_satisfies(word, q)


class TestStructureChecker:
    def db_and_models(self):
        u, v = ordc("u"), ordc("v")
        db = IndefiniteDatabase.of(
            ProperAtom("R", (u, obj("a"))),
            ProperAtom("R", (v, obj("b"))),
            le(u, v),
        )
        return db, list(iter_minimal_models(db))

    def test_order_atom_evaluation(self):
        db, models = self.db_and_models()
        x = objvar("x")
        q_lt = ConjunctiveQuery.of(
            ProperAtom("R", (t1, x)),
            ProperAtom("R", (t2, objvar("y"))),
            lt(t1, t2),
        )
        merged = [m for m in models if m.order_size == 1]
        split = [m for m in models if m.order_size == 2]
        assert merged and split
        assert all(not structure_satisfies(m, q_lt) for m in merged)
        assert all(structure_satisfies(m, q_lt) for m in split)

    def test_neq_atom(self):
        db, models = self.db_and_models()
        q_ne = ConjunctiveQuery.of(
            ProperAtom("R", (t1, objvar("x"))),
            ProperAtom("R", (t2, objvar("y"))),
            ne(t1, t2),
        )
        for m in models:
            assert structure_satisfies(m, q_ne) == (m.order_size == 2)

    def test_loose_object_variable(self):
        db, models = self.db_and_models()
        # x occurs in no proper atom: ranges over the object domain.
        q = ConjunctiveQuery.from_atoms(
            [ProperAtom("R", (t1, objvar("x")))],
        )
        assert all(structure_satisfies(m, q) for m in models)

    def test_constant_resolution(self):
        db, models = self.db_and_models()
        q = ConjunctiveQuery.of(ProperAtom("R", (t1, obj("a"))))
        assert all(structure_satisfies(m, q) for m in models)
        q_missing = ConjunctiveQuery.of(ProperAtom("R", (t1, obj("zz"))))
        with pytest.raises(KeyError):
            structure_satisfies(models[0], q_missing)

    def test_repeated_variable_in_atom(self):
        u = ordc("u")
        db = IndefiniteDatabase.of(ProperAtom("E", (u, u)))
        (m,) = list(iter_minimal_models(db))
        q_same = ConjunctiveQuery.of(ProperAtom("E", (t1, t1)))
        assert structure_satisfies(m, q_same)

    def test_agreement_with_word_checker_on_monadic(self):
        rng = random.Random(3)
        from repro.workloads.generators import random_labeled_dag

        for _ in range(30):
            dag = random_labeled_dag(rng, rng.randrange(1, 5))
            q = random_conjunctive_monadic_query(rng, rng.randrange(0, 3))
            n = q.normalized()
            if n is None:
                continue
            qdag = n.monadic_dag()
            db = dag.to_database()
            for m in iter_minimal_models(db):
                assert structure_satisfies(m, q) == word_satisfies_dag(
                    m.word(), qdag
                )
