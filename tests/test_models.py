"""Tests for minimal-model enumeration, counting, and homomorphisms."""

from __future__ import annotations

import random

import pytest

from repro.core.atoms import ProperAtom, le, lt, ne
from repro.core.database import IndefiniteDatabase, LabeledDag
from repro.core.models import (
    count_minimal_models,
    find_homomorphism,
    is_homomorphism,
    iter_block_sequences,
    iter_minimal_models,
    iter_minimal_words,
    structure_from_blocks,
)
from repro.core.ordergraph import OrderGraph
from repro.core.sorts import obj, ordc
from repro.flexiwords.flexiword import FlexiWord
from repro.workloads.generators import random_labeled_dag


def graph_of(*atoms) -> OrderGraph:
    return OrderGraph.from_atoms(atoms)


def o(name: str):
    return ordc(name)


class TestBlockSequences:
    def test_single_vertex(self):
        g = graph_of()
        g.add_vertex("a")
        assert list(iter_block_sequences(g)) == [(frozenset({"a"}),)]

    def test_two_incomparable(self):
        g = graph_of()
        g.add_vertex("a")
        g.add_vertex("b")
        seqs = set(iter_block_sequences(g))
        assert seqs == {
            (frozenset({"a"}), frozenset({"b"})),
            (frozenset({"b"}), frozenset({"a"})),
            (frozenset({"a", "b"}),),
        }

    def test_lt_edge_forbids_merge(self):
        g = graph_of(lt(o("a"), o("b")))
        assert list(iter_block_sequences(g)) == [
            (frozenset({"a"}), frozenset({"b"}))
        ]

    def test_le_edge_allows_merge_one_way(self):
        g = graph_of(le(o("a"), o("b")))
        seqs = set(iter_block_sequences(g))
        assert seqs == {
            (frozenset({"a"}), frozenset({"b"})),
            (frozenset({"a", "b"}),),
        }

    def test_s2_closure_enforced(self):
        # a <= b: a block containing b but not a is illegal.
        g = graph_of(le(o("a"), o("b")))
        for seq in iter_block_sequences(g):
            for block in seq:
                if "b" in block and "a" not in block:
                    # a must already be sorted: check it appeared earlier
                    earlier = set()
                    for s in seq:
                        if s == block:
                            break
                        earlier |= s
                    assert "a" in earlier

    def test_neq_forbids_same_block(self):
        g = graph_of(ne(o("a"), o("b")))
        seqs = set(iter_block_sequences(g))
        assert seqs == {
            (frozenset({"a"}), frozenset({"b"})),
            (frozenset({"b"}), frozenset({"a"})),
        }

    def test_example_2_4_topological_sort(self):
        """The sort of Example 2.4 appears among the block sequences."""
        g = graph_of(
            lt(o("u"), o("v")), lt(o("v"), o("w")),
            le(o("u"), o("t")), le(o("t"), o("w")),
        )
        seqs = set(iter_block_sequences(g))
        assert (
            frozenset({"u", "t"}),
            frozenset({"v"}),
            frozenset({"w"}),
        ) in seqs

    def test_count_matches_enumeration(self):
        rng = random.Random(0)
        for _ in range(40):
            g = random_labeled_dag(rng, rng.randrange(0, 6)).graph
            assert count_minimal_models(g) == sum(
                1 for _ in iter_block_sequences(g)
            )

    def test_interleaving_two_chains_is_delannoy(self):
        """Two strict n-chains interleave in Delannoy(n, n) ways."""
        for n, expected in [(1, 3), (2, 13), (3, 63), (4, 321)]:
            chains = [
                FlexiWord.word([{"A"}] * n),
                FlexiWord.word([{"B"}] * n),
            ]
            dag = LabeledDag.from_chains(chains)
            assert count_minimal_models(dag.graph) == expected


class TestStructures:
    def db(self) -> IndefiniteDatabase:
        return IndefiniteDatabase.of(
            ProperAtom("B", (o("t"), obj("a"))),
            ProperAtom("B", (o("w"), obj("b"))),
            lt(o("u"), o("v")), lt(o("v"), o("w")),
            le(o("u"), o("t")), le(o("t"), o("w")),
        )

    def test_example_2_7_minimal_model(self):
        """Example 2.7: merging u and t yields B(a, x1), B(b, x3)."""
        db = self.db()
        models = list(iter_minimal_models(db))
        target = None
        for m in models:
            interp = m.interpretation
            if interp["u"] == interp["t"] == 0 and m.order_size == 3:
                target = m
        assert target is not None
        facts = target.fact_dict
        assert ("B" in facts) and (0, "a") in facts["B"]
        assert (2, "b") in facts["B"]

    def test_every_point_is_hit(self):
        db = self.db()
        for m in iter_minimal_models(db):
            hit = {v for v in m.interpretation.values() if isinstance(v, int)}
            assert hit == set(range(m.order_size))

    def test_inconsistent_db_has_no_models(self):
        db = IndefiniteDatabase.of(lt(o("a"), o("b")), lt(o("b"), o("a")))
        assert list(iter_minimal_models(db)) == []

    def test_word_view(self):
        dag = LabeledDag.from_flexiword(FlexiWord.parse("{P} < {Q,R}"))
        words = list(iter_minimal_words(dag))
        assert words == [(frozenset({"P"}), frozenset({"Q", "R"}))]


class TestHomomorphisms:
    def test_proposition_2_8(self):
        """Every pair of minimal models: hom from some minimal model into
        each model of the database (here: between minimal models, each
        model has a minimal model mapping into it — itself)."""
        db = self.db = IndefiniteDatabase.of(
            ProperAtom("P", (o("u"),)),
            ProperAtom("Q", (o("v"),)),
        )
        models = list(iter_minimal_models(db))
        for m in models:
            assert find_homomorphism(m, m) is not None

    def test_merged_model_maps_into_split_model(self):
        db = IndefiniteDatabase.of(
            ProperAtom("P", (o("u"),)),
            ProperAtom("Q", (o("v"),)),
            le(o("u"), o("v")),
        )
        models = {m.order_size: m for m in iter_minimal_models(db)}
        merged, split = models[1], models[2]
        # The merged model is NOT below the split one (u=v there), but
        # each minimal model maps homomorphically into itself; and no
        # homomorphism exists from split into merged that respects '<'.
        assert find_homomorphism(split, split) is not None
        assert find_homomorphism(split, merged) is None

    def test_homomorphism_validator(self):
        db = IndefiniteDatabase.of(ProperAtom("P", (o("u"),)))
        (m,) = list(iter_minimal_models(db))
        assert is_homomorphism({0: 0, **{c: c for c in m.objects}}, m, m)
        assert not is_homomorphism({0: 5}, m, m)
