"""Differential suite for the bitset minimal-model engine (region-DAG DP).

Every entry point of the model engine — block-sequence enumeration,
model counting, brute-force entailment (n-ary and monadic), countermodel
counting/enumeration and the pooled entailment sweep — is compared
against the retained seed algorithms running under
:func:`repro.substrate.reference.naive_mode`, on randomized inputs
covering '!=' pairs (database and query side), inconsistent graphs, the
empty graph, and mutation-after-query sequences.  Countermodels produced
by the DP path are additionally verified semantically: they are genuine
minimal models of the database (membership in the naive enumeration,
identity homomorphism) that falsify the query per
:func:`~repro.algorithms.modelcheck.structure_satisfies`.
"""

from __future__ import annotations

import random

import pytest

from repro.algorithms.bruteforce import (
    count_countermodels,
    entailment_sweep,
    entails_bruteforce,
    entails_bruteforce_monadic,
    iter_countermodels_nary,
)
from repro.algorithms.modelcheck import structure_satisfies, word_satisfies_dag
from repro.api.plan import prune_candidates_by_models
from repro.api.session import Session
from repro.core.atoms import OrderAtom, ProperAtom, Rel
from repro.core.models import (
    count_minimal_models,
    find_homomorphism,
    iter_block_sequences,
    iter_minimal_models,
    iter_minimal_words,
)
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery, as_dnf
from repro.core.regions import RegionCacheHub
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.engine.batch import Mutation, QueryRequest, execute_many, execute_stream
from repro.substrate import reference
from repro.workloads.generators import (
    random_disjunctive_monadic_query,
    random_labeled_dag,
    random_monadic_database,
    random_nary_database,
    random_nary_query,
)


def random_graph_with_neq(rng, max_n=7, neq_prob=0.15, cycle_prob=0.1):
    """A random order graph, possibly with '!=' pairs and '<'-cycles."""
    g = random_labeled_dag(rng, rng.randrange(0, max_n), edge_prob=0.4).graph
    vs = sorted(g.vertices)
    for i, u in enumerate(vs):
        for v in vs[i + 1 :]:
            if rng.random() < neq_prob:
                g.add_edge(u, v, Rel.NE)
        if vs and rng.random() < cycle_prob:
            # a backward edge: may create a '<=' or '<' cycle
            w = rng.choice(vs)
            g.add_edge(u, w, Rel.LE if rng.random() < 0.5 else Rel.LT)
    if vs and rng.random() < 0.05:
        g.add_edge(vs[0], vs[0], Rel.NE)  # x != x: inconsistent
    return g


def random_nary_workload(rng, max_order=6):
    db = random_nary_database(
        rng,
        n_order=rng.randrange(1, max_order),
        n_objects=rng.randrange(1, 3),
        n_facts=rng.randrange(0, 7),
        preds=(("B", 2), ("C", 3)),
        neq_prob=0.15,
    )
    query = DisjunctiveQuery(
        tuple(
            random_nary_query(
                rng,
                rng.randrange(0, 3),
                rng.randrange(1, 3),
                1,
                preds=(("B", 2), ("C", 3)),
                neq_prob=0.2,
            )
            for _ in range(rng.randrange(1, 3))
        )
    )
    return db, query


class TestEnumerationDifferential:
    def test_sequences_and_counts_match_naive(self):
        rng = random.Random(2024)
        for trial in range(120):
            graph = random_graph_with_neq(rng)
            norm = graph.normalize()
            target = norm.graph if norm.consistent else graph
            fast_seqs = list(iter_block_sequences(target))
            fast_count = count_minimal_models(target)
            with reference.naive_mode():
                slow_seqs = list(iter_block_sequences(target))
                slow_count = count_minimal_models(target)
            # identical sequences in the identical order
            assert fast_seqs == slow_seqs, trial
            assert fast_count == slow_count == len(fast_seqs), trial

    def test_empty_graph(self):
        from repro.core.ordergraph import OrderGraph

        g = OrderGraph()
        assert list(iter_block_sequences(g)) == [()]
        assert count_minimal_models(g) == 1

    def test_inconsistent_graph_has_no_models(self):
        from repro.core.ordergraph import OrderGraph

        g = OrderGraph()
        g.add_edge("a", "b", Rel.LT)
        g.add_edge("b", "a", Rel.LE)
        assert list(iter_block_sequences(g)) == []
        assert count_minimal_models(g) == 0
        g2 = OrderGraph()
        g2.add_edge("a", "a", Rel.NE)
        assert list(iter_block_sequences(g2)) == []
        assert count_minimal_models(g2) == 0

    def test_mutation_after_query_sequences(self):
        """Enumeration stays exact across in-place graph mutations."""
        rng = random.Random(7)
        for trial in range(25):
            graph = random_labeled_dag(rng, 5, edge_prob=0.3).graph
            caches = RegionCacheHub()
            for step in range(4):
                norm = graph.normalize()
                target = norm.graph if norm.consistent else graph
                fast = list(iter_block_sequences(target, caches))
                with reference.naive_mode():
                    slow = list(iter_block_sequences(target))
                assert fast == slow, (trial, step)
                vs = sorted(graph.vertices)
                u, v = rng.choice(vs), rng.choice(vs)
                if rng.random() < 0.5:
                    graph.add_edge(
                        u, v, Rel.LT if rng.random() < 0.5 else Rel.LE
                    )
                else:
                    graph.remove_edge(u, v)
                # the mutated graph is a new generation: hubs keyed on the
                # old normalized instance must not be reused for it
                caches = RegionCacheHub()


class TestBruteforceDifferential:
    def test_nary_entailment_counts_and_countermodels(self):
        rng = random.Random(4711)
        for trial in range(80):
            db, query = random_nary_workload(rng)
            fast = entails_bruteforce(db, query)
            fast_count = count_countermodels(db, query)
            fast_models = list(iter_countermodels_nary(db, query))
            with reference.naive_mode():
                slow = entails_bruteforce(db, query)
                slow_count = count_countermodels(db, query)
                slow_models = list(iter_countermodels_nary(db, query))
            assert fast.holds == slow.holds, trial
            assert fast.countermodel == slow.countermodel, trial
            assert fast_count == slow_count == len(fast_models), trial
            assert fast_models == slow_models, trial

    def test_countermodels_verify_semantically(self):
        rng = random.Random(99)
        checked = 0
        for trial in range(60):
            db, query = random_nary_workload(rng, max_order=5)
            witness = entails_bruteforce(db, query)
            if witness.holds:
                continue
            counter = witness.countermodel
            checked += 1
            dnf = as_dnf(query).normalized()
            # falsifies the query ...
            assert not structure_satisfies(counter, dnf)
            # ... is a genuine minimal model of the database ...
            with reference.naive_mode():
                assert counter in list(iter_minimal_models(db))
            # ... and supports the identity homomorphism
            assert find_homomorphism(counter, counter) is not None
        assert checked >= 10  # the workload actually produced countermodels

    def test_monadic_entailment_matches_naive(self):
        rng = random.Random(31337)
        for trial in range(80):
            db = random_monadic_database(rng, rng.randrange(0, 7))
            dag = db.monadic()
            query = random_disjunctive_monadic_query(
                rng, rng.randrange(1, 4), rng.randrange(1, 4)
            )
            fast = entails_bruteforce_monadic(dag, query)
            with reference.naive_mode():
                slow = entails_bruteforce_monadic(dag, query)
            assert fast.holds == slow.holds, trial
            assert fast.countermodel == slow.countermodel, trial
            if not fast.holds:
                # the witness word is a real minimal word model that no
                # disjunct matches (Corollary 5.1 checking)
                assert fast.countermodel in set(iter_minimal_words(dag))
                assert not any(
                    word_satisfies_dag(fast.countermodel, d.monadic_dag())
                    for d in as_dnf(query).normalized().disjuncts
                )

    def test_entailment_after_session_mutations(self):
        """The bruteforce path stays exact across granular invalidation."""
        rng = random.Random(5)
        for trial in range(15):
            db, query = random_nary_workload(rng, max_order=5)
            session = Session(db)
            plan = session.prepare(query, method="bruteforce")
            order_names = sorted(db.order_constants)
            for step in range(4):
                got = plan.execute()
                with reference.naive_mode():
                    expect = entails_bruteforce(session.db, query)
                assert got.holds == expect.holds, (trial, step)
                if order_names and rng.random() < 0.5:
                    u, v = rng.choice(order_names), rng.choice(order_names)
                    rel = rng.choice([Rel.LT, Rel.LE, Rel.NE])
                    if u == v and rel is not Rel.LE:
                        rel = Rel.LE
                    session.assert_order(OrderAtom(ordc(u), rel, ordc(v)))
                else:
                    session.assert_facts(
                        ProperAtom(
                            "B",
                            (
                                ordc(rng.choice(order_names or ["u0"])),
                                obj(f"m{step}"),
                            ),
                        )
                    )

    def test_foreign_constant_raises_like_the_model_checker(self):
        db = random_nary_database(random.Random(1), 3, 2, 4)
        bad = ConjunctiveQuery.of(
            ProperAtom("B", (ordc("zzz"), obj("a0")))
        )
        with pytest.raises(KeyError):
            entails_bruteforce(db, bad)


class TestSweepDifferential:
    def test_entailment_sweep_matches_per_query_calls(self):
        rng = random.Random(271828)
        for trial in range(25):
            db, _ = random_nary_workload(rng, max_order=5)
            queries = [
                as_dnf(
                    random_nary_query(
                        rng, rng.randrange(0, 3), 2, 1,
                        preds=(("B", 2), ("C", 3)), neq_prob=0.2,
                    )
                )
                for _ in range(rng.randrange(1, 5))
            ]
            out = entailment_sweep(db, queries, witness_queries=queries)
            with reference.naive_mode():
                naive = entailment_sweep(db, queries, witness_queries=queries)
            for q in queries:
                assert out[q].holds == naive[q].holds, trial
                assert out[q].countermodel == naive[q].countermodel, trial
                solo = entails_bruteforce(db, q)
                assert out[q].holds == solo.holds, trial

    def test_prune_token_under_many_queries_needs_all_to_hold(self):
        """A token listed under several queries survives only when ALL of
        them are entailed (the seed discarded it on any failing query)."""
        db = random_nary_database(random.Random(8), 3, 2, 5)
        entailed = as_dnf(ConjunctiveQuery.of())  # trivially true
        falsified = None
        rng = random.Random(9)
        while falsified is None:
            q = as_dnf(
                random_nary_query(rng, 2, 2, 1, preds=(("B", 2),))
            )
            if not entails_bruteforce(db, q).holds:
                falsified = q
        candidates = {entailed: ["tok"], falsified: ["tok", "other"]}
        assert prune_candidates_by_models(db, candidates) == set()
        with reference.naive_mode():
            assert prune_candidates_by_models(db, candidates) == set()
        assert prune_candidates_by_models(db, {entailed: ["tok"]}) == {"tok"}

    def test_stream_error_leaves_sequential_prefix_state(self):
        """A write run that raises mid-coalesce must leave exactly the
        state a sequential loop would have: earlier writes applied."""
        db = random_nary_database(random.Random(3), 3, 2, 4)
        good = ProperAtom("B", (ordc("u0"), obj("a0")))
        bad = ProperAtom("B", (ordc("u1"), objvar("x")))  # non-ground
        session = Session(db)
        ops = [
            Mutation("assert_facts", (good,)),
            Mutation("assert_facts", (bad,)),
        ]
        from repro.core.errors import SortError

        with pytest.raises(SortError):
            execute_stream(session, ops)
        # the first (valid) write landed before the failure, as sequential
        assert good in session.db.proper_atoms

    def test_prune_candidates_matches_naive(self):
        rng = random.Random(1618)
        for trial in range(20):
            db, _ = random_nary_workload(rng, max_order=5)
            domain = sorted(db.object_constants)
            x = objvar("x")
            base = as_dnf(
                random_nary_query(
                    rng, rng.randrange(1, 3), 2, 1, preds=(("B", 2), ("C", 3))
                )
            )
            candidates = {}
            for name in domain:
                q = base.substitute({x: obj(name)})
                candidates.setdefault(q, []).append(("tok", name))
            fast = prune_candidates_by_models(db, candidates)
            with reference.naive_mode():
                slow = prune_candidates_by_models(db, candidates)
            assert fast == slow, trial

    def test_batched_closed_bruteforce_queries_share_one_sweep(self):
        rng = random.Random(3141)
        for trial in range(12):
            db, _ = random_nary_workload(rng, max_order=5)
            requests = [
                QueryRequest(
                    as_dnf(
                        random_nary_query(
                            rng, rng.randrange(0, 3), 2, 1,
                            preds=(("B", 2), ("C", 3)),
                        )
                    )
                )
                for _ in range(4)
            ]
            batched = execute_many(Session(db), requests)
            for request, result in zip(requests, batched):
                solo = Session(db).prepare(request.query).execute()
                # byte-for-byte: the shared sweep is invisible in the
                # Result (verdict, method tag AND countermodel witness)
                assert result == solo, trial

    def test_stream_write_coalescing_preserves_sequential_semantics(self):
        """Runs of writes collapse to one mutator call; reads see the
        exact sequential database."""
        rng = random.Random(137)
        for trial in range(10):
            db, query = random_nary_workload(rng, max_order=4)
            order_names = sorted(db.order_constants) or ["u0"]
            ops = []
            for i in range(12):
                roll = rng.random()
                if roll < 0.5:
                    ops.append(QueryRequest(query, method="bruteforce"))
                else:
                    fact = ProperAtom(
                        "B", (ordc(rng.choice(order_names)), obj(f"s{i % 3}"))
                    )
                    kind = (
                        "assert_facts" if rng.random() < 0.6 else "retract_facts"
                    )
                    ops.append(Mutation(kind, (fact,)))
            streamed = execute_stream(Session(db), ops)
            # sequential replay: one session, one op at a time
            session = Session(db)
            for op, got in zip(ops, streamed):
                if isinstance(op, Mutation):
                    assert got is None
                    op.apply(session)
                else:
                    expect = session.prepare(
                        op.query, method=op.method
                    ).execute()
                    assert got.holds == expect.holds, trial


class TestCountingDP:
    def test_count_is_one_arithmetic_pass_over_regions(self):
        """The DP count agrees with a literal enumeration (distinct check
        from the naive differential: this one counts the fast path's own
        sequences)."""
        rng = random.Random(55)
        for _ in range(40):
            graph = random_graph_with_neq(rng, max_n=6)
            norm = graph.normalize()
            target = norm.graph if norm.consistent else graph
            assert count_minimal_models(target) == sum(
                1 for _ in iter_block_sequences(target)
            )

    def test_delannoy_interleavings_still_exact(self):
        from repro.core.database import LabeledDag
        from repro.flexiwords.flexiword import FlexiWord

        for n, expected in [(1, 3), (2, 13), (3, 63), (4, 321)]:
            chains = [
                FlexiWord.word([{"A"}] * n),
                FlexiWord.word([{"B"}] * n),
            ]
            dag = LabeledDag.from_chains(chains)
            assert count_minimal_models(dag.graph) == expected
