"""Tests for the order graph: normalization, consistency, width, minors."""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.core.atoms import Rel, le, lt, ne
from repro.core.ordergraph import OrderGraph
from repro.core.sorts import ordc


def graph_of(*atoms) -> OrderGraph:
    return OrderGraph.from_atoms(atoms)


def o(name: str):
    return ordc(name)


class TestNormalization:
    def test_le_cycle_contracts(self):
        g = graph_of(le(o("a"), o("b")), le(o("b"), o("c")), le(o("c"), o("a")))
        norm = g.normalize()
        assert norm.consistent
        assert len(norm.graph) == 1
        assert norm.canon["a"] == norm.canon["b"] == norm.canon["c"] == "a"

    def test_lt_cycle_inconsistent(self):
        g = graph_of(lt(o("a"), o("b")), le(o("b"), o("a")))
        assert not g.normalize().consistent
        assert not g.is_consistent()

    def test_self_lt_inconsistent(self):
        g = graph_of(lt(o("a"), o("a")))
        assert not g.is_consistent()

    def test_self_le_dropped(self):
        g = graph_of(le(o("a"), o("a")))
        norm = g.normalize()
        assert norm.consistent
        assert norm.graph.edge_label("a", "a") is None

    def test_neq_between_identified_is_inconsistent(self):
        g = graph_of(le(o("a"), o("b")), le(o("b"), o("a")), ne(o("a"), o("b")))
        assert not g.is_consistent()

    def test_neq_self_inconsistent(self):
        g = graph_of(ne(o("a"), o("a")))
        assert not g.is_consistent()

    def test_neq_alone_is_consistent(self):
        g = graph_of(ne(o("a"), o("b")))
        assert g.is_consistent()

    def test_partial_contraction_keeps_edges(self):
        g = graph_of(
            le(o("a"), o("b")), le(o("b"), o("a")), lt(o("b"), o("c"))
        )
        norm = g.normalize()
        assert norm.consistent
        assert norm.graph.edge_label("a", "c") is Rel.LT


class TestDerivedRelations:
    def test_entails_le_via_path(self):
        g = graph_of(le(o("a"), o("b")), le(o("b"), o("c")))
        assert g.entails_atom("a", "c", Rel.LE)
        assert not g.entails_atom("a", "c", Rel.LT)
        assert not g.entails_atom("c", "a", Rel.LE)

    def test_entails_lt_via_mixed_path(self):
        g = graph_of(le(o("a"), o("b")), lt(o("b"), o("c")), le(o("c"), o("d")))
        assert g.entails_atom("a", "d", Rel.LT)
        assert g.entails_atom("a", "d", Rel.NE)

    def test_full_closure_adds_derived_atoms(self):
        g = graph_of(le(o("a"), o("b")), lt(o("b"), o("c")))
        full = g.full()
        assert full.edge_label("a", "c") is Rel.LT
        assert full.edge_label("a", "b") is Rel.LE

    def test_lt_beats_le_on_same_pair(self):
        g = graph_of(le(o("a"), o("b")), lt(o("a"), o("b")))
        assert g.edge_label("a", "b") is Rel.LT


class TestMinorsAndMinimal:
    def test_example_2_4(self):
        """u < v < w, u <= t <= w: the minor vertices are u and t."""
        g = graph_of(
            lt(o("u"), o("v")), lt(o("v"), o("w")),
            le(o("u"), o("t")), le(o("t"), o("w")),
        )
        assert g.minimal_vertices() == {"u"}
        assert g.minor_vertices() == {"u", "t"}

    def test_minimal_always_minor(self):
        rng = random.Random(0)
        from repro.workloads.generators import random_labeled_dag

        for _ in range(50):
            g = random_labeled_dag(rng, rng.randrange(1, 7)).graph
            assert g.minimal_vertices() <= g.minor_vertices()

    def test_le_closure(self):
        g = graph_of(le(o("a"), o("b")), le(o("b"), o("c")), lt(o("x"), o("b")))
        assert g.le_predecessor_closure({"c"}) == {"a", "b", "c"}
        assert g.le_predecessor_closure({"a"}) == {"a"}


class TestWidth:
    def test_chain_width_one(self):
        g = graph_of(lt(o("a"), o("b")), lt(o("b"), o("c")))
        assert g.width() == 1

    def test_antichain(self):
        g = OrderGraph()
        for name in "abcd":
            g.add_vertex(name)
        assert g.width() == 4

    def test_two_chains(self):
        g = graph_of(
            lt(o("a1"), o("a2")), lt(o("a2"), o("a3")),
            lt(o("b1"), o("b2")),
        )
        assert g.width() == 2

    def test_width_matches_bruteforce(self):
        rng = random.Random(1)
        from repro.workloads.generators import random_labeled_dag

        for _ in range(40):
            g = random_labeled_dag(rng, rng.randrange(0, 7)).graph
            fast = g.width()
            slow = 0
            verts = sorted(g.vertices)
            for r in range(len(verts) + 1):
                for combo in combinations(verts, r):
                    if g.is_antichain(combo):
                        slow = max(slow, r)
            assert fast == slow

    def test_returned_antichain_is_antichain(self):
        rng = random.Random(2)
        from repro.workloads.generators import random_labeled_dag

        for _ in range(40):
            g = random_labeled_dag(rng, rng.randrange(0, 7)).graph
            ac = g.a_maximum_antichain()
            assert g.is_antichain(ac)
            assert len(ac) == g.width()


class TestUpSetsAndRemoval:
    def test_up_set(self):
        g = graph_of(lt(o("a"), o("b")), lt(o("b"), o("c")), lt(o("x"), o("c")))
        assert g.up_set({"b"}) == {"b", "c"}
        assert g.up_set({"a", "x"}) == {"a", "b", "c", "x"}

    def test_remove_vertices(self):
        g = graph_of(lt(o("a"), o("b")), lt(o("b"), o("c")), ne(o("a"), o("c")))
        g.remove_vertices({"b"})
        assert g.vertices == {"a", "c"}
        assert g.edge_label("a", "b") is None
        assert g.neq_pairs == {frozenset({"a", "c"})}
        g.remove_vertices({"c"})
        assert g.neq_pairs == set()
