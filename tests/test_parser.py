"""Tests for the text DSL parser."""

from __future__ import annotations

import pytest

from repro.core.errors import ParseError
from repro.core.entailment import entails
from repro.core.sorts import Sort
from repro.substrate.parser import parse_database, parse_query


class TestDatabaseParsing:
    def test_basic(self):
        db = parse_database(
            """
            # a comment
            order: u v
            P(u); Q(v)
            u < v
            """
        )
        assert db.order_constants == {"u", "v"}
        assert {a.pred for a in db.proper_atoms} == {"P", "Q"}

    def test_sort_inference_from_order_atoms(self):
        db = parse_database("P(u); u < v; Q(v)")
        assert db.order_constants == {"u", "v"}

    def test_object_default(self):
        db = parse_database("R(u, a); u < w")
        atom = next(a for a in db.proper_atoms if a.pred == "R")
        assert atom.args[0].sort is Sort.ORDER
        assert atom.args[1].sort is Sort.OBJECT

    def test_neq(self):
        db = parse_database("P(u); P(v); u != v")
        assert db.has_neq

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_database("P(")
        with pytest.raises(ParseError):
            parse_database("u <")
        with pytest.raises(ParseError):
            parse_database("P()")


class TestQueryParsing:
    def test_variables_and_order_inference(self):
        q = parse_query("P(t1) & t1 < t2 & Q(t2)")
        (cq,) = q.disjuncts
        assert {v.name for v in cq.order_variables()} == {"t1", "t2"}

    def test_disjunction(self):
        q = parse_query("P(t) | Q(t)")
        assert len(q.disjuncts) == 2

    def test_constants_from_database(self):
        db = parse_database("order: u\nP(u); Tag(A)")
        q = parse_query("P(u) & Tag(A)", db)
        (cq,) = q.disjuncts
        consts = {c.name for c in cq.constants()}
        assert consts == {"u", "A"}

    def test_signature_typing(self):
        db = parse_database("order: u\nP(u)")
        q = parse_query("P(t)", db)  # t must come out order-sorted
        (cq,) = q.disjuncts
        assert next(iter(cq.order_variables())).name == "t"
        assert cq.is_monadic()

    def test_end_to_end(self):
        db = parse_database(
            """
            Boot(u); Crash(v); u < v
            """
        )
        assert entails(db, parse_query("Boot(a) & a < b & Crash(b)", db))
        assert not entails(db, parse_query("Crash(a) & a < b & Boot(b)", db))

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_query("")
        with pytest.raises(ParseError):
            parse_query("P(t) | ")
