"""Tests for the point algebra and Allen interval substrates."""

from __future__ import annotations

import random
from itertools import product

import pytest

from repro.core.atoms import le, lt, ne
from repro.core.sorts import ordc
from repro.pointalgebra.allen import (
    IntervalNetwork,
    allen_relations,
    endpoint_constraints,
    interval_database_atoms,
)
from repro.pointalgebra.pa import (
    ANY,
    EMPTY,
    EQ,
    GE,
    GT,
    LE,
    LT,
    NE,
    PointNetwork,
    compose,
    converse,
    entailed_relation,
    from_rel,
)


def o(name):
    return ordc(name)


class TestComposition:
    def test_identity_of_eq(self):
        for r in (LT, LE, EQ, NE, GT, ANY):
            assert compose(EQ, r) == r
            assert compose(r, EQ) == r

    def test_lt_lt(self):
        assert compose(LT, LT) == LT

    def test_lt_gt_is_any(self):
        assert compose(LT, GT) == ANY

    def test_converse_involution(self):
        for r in (LT, LE, EQ, NE, GT, ANY, GE):
            assert converse(converse(r)) == r

    def test_composition_soundness_exhaustive(self):
        """compose must contain every relation realizable by integers."""
        rels = {"<": lambda a, b: a < b, "=": lambda a, b: a == b,
                ">": lambda a, b: a > b}
        for r1_chars in product("<=>", repeat=2):
            for r2_chars in product("<=>", repeat=2):
                r1, r2 = frozenset(r1_chars), frozenset(r2_chars)
                composed = compose(r1, r2)
                for a, b, c in product(range(3), repeat=3):
                    ab = "<" if a < b else "=" if a == b else ">"
                    bc = "<" if b < c else "=" if b == c else ">"
                    ac = "<" if a < c else "=" if a == c else ">"
                    if ab in r1 and bc in r2:
                        assert ac in composed


class TestPointNetwork:
    def test_chain_consistent(self):
        net = PointNetwork()
        net.constrain("a", "b", LT)
        net.constrain("b", "c", LE)
        assert net.is_consistent()
        assert net.minimal_relation("a", "c") == LT

    def test_cycle_inconsistent(self):
        net = PointNetwork()
        net.constrain("a", "b", LT)
        net.constrain("b", "a", LE)
        assert not net.is_consistent()

    def test_le_cycle_forces_equality(self):
        net = PointNetwork()
        net.constrain("a", "b", LE)
        net.constrain("b", "c", LE)
        net.constrain("c", "a", LE)
        assert net.is_consistent()
        assert net.minimal_relation("a", "b") == EQ

    def test_le_cycle_with_neq_inconsistent(self):
        net = PointNetwork()
        net.constrain("a", "b", LE)
        net.constrain("b", "c", LE)
        net.constrain("c", "a", LE)
        net.constrain("a", "c", NE)
        assert not net.is_consistent()

    def test_consistency_matches_ordergraph(self):
        """PA consistency agrees with the order-graph check on random
        [<, <=, !=] constraint sets."""
        rng = random.Random(0)
        from repro.core.ordergraph import OrderGraph
        from repro.core.atoms import OrderAtom, Rel

        names = ["a", "b", "c", "d"]
        for _ in range(150):
            atoms = []
            net = PointNetwork()
            graph_has_model = None
            for _ in range(rng.randrange(1, 6)):
                x, y = rng.sample(names, 2)
                rel = rng.choice([Rel.LT, Rel.LE, Rel.NE])
                atoms.append(OrderAtom(o(x), rel, o(y)))
                net.constrain(x, y, from_rel(rel))
            graph = OrderGraph.from_atoms(atoms)
            # Order-graph consistency with '!=' needs model enumeration:
            from repro.core.models import count_minimal_models

            has_model = count_minimal_models(graph) > 0
            assert net.is_consistent() == has_model, atoms

    def test_entailed_relation(self):
        atoms = [le(o("x"), o("y")), lt(o("y"), o("z"))]
        assert entailed_relation(atoms, "x", "z") == LT
        assert entailed_relation(atoms, "x", "y") == LE
        assert entailed_relation(atoms, "x", "w") == ANY
        bad = [lt(o("x"), o("y")), lt(o("y"), o("x"))]
        assert entailed_relation(bad, "x", "y") == EMPTY


class TestAllen:
    def test_thirteen_relations(self):
        assert len(allen_relations()) == 13

    def test_converse_symmetry(self):
        fwd = endpoint_constraints("before", "I", "J")
        back = endpoint_constraints("before_i", "J", "I")
        assert sorted(map(repr, fwd)) == sorted(map(repr, back))

    def test_meets(self):
        constraints = dict(
            ((a, b), r) for a, b, r in endpoint_constraints("meets", "I", "J")
        )
        assert constraints[("I.hi", "J.lo")] == EQ

    def test_relations_mutually_exclusive(self):
        """On concrete integer intervals exactly one relation holds."""
        intervals = [(0, 2), (1, 3), (0, 3), (3, 5), (2, 4), (0, 5), (1, 2)]
        rels = allen_relations()
        for i1 in intervals:
            for i2 in intervals:
                if i1 == i2:
                    continue
                holding = [
                    r for r in rels if _holds(r, i1, i2)
                ]
                assert len(holding) <= 1

    def test_interval_network_cycle(self):
        net = IntervalNetwork()
        net.constrain("a", ["before"], "b")
        net.constrain("b", ["before"], "c")
        net.constrain("c", ["before"], "a")
        assert not net.consistent_approximation()

    def test_database_atoms(self):
        atoms = interval_database_atoms([("a", "before", "b")])
        names = {x.left.name for x in atoms} | {x.right.name for x in atoms}
        assert names == {"a.lo", "a.hi", "b.lo", "b.hi"}

    def test_unknown_relation_rejected(self):
        net = IntervalNetwork()
        with pytest.raises(ValueError):
            net.constrain("a", ["sideways"], "b")


def _holds(relation: str, i1: tuple[int, int], i2: tuple[int, int]) -> bool:
    values = {
        "I.lo": i1[0], "I.hi": i1[1], "J.lo": i2[0], "J.hi": i2[1]
    }
    for a, b, rel in endpoint_constraints(relation, "I", "J"):
        x, y = values[a], values[b]
        sym = "<" if x < y else "=" if x == y else ">"
        if sym not in rel:
            return False
    return True
