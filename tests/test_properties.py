"""Property-based tests (hypothesis) for the core invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from helpers import (
    naive_entails_flexi,
    naive_entails_query,
    naive_word_satisfies_dag,
)
from repro.algorithms.conjunctive import bounded_width_entails_dag, paths_entails_dag
from repro.algorithms.disjunctive import theorem53_entails
from repro.algorithms.modelcheck import word_satisfies_dag
from repro.algorithms.seq import seq_countermodel, seq_entails
from repro.core.atoms import Rel
from repro.core.database import LabeledDag
from repro.core.models import count_minimal_models, iter_minimal_words
from repro.core.ordergraph import OrderGraph
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.flexiwords.flexiword import FlexiWord
from repro.flexiwords.subword import flexi_entails, flexi_le, is_subword

PREDS = ("P", "Q")

letters = st.frozensets(st.sampled_from(PREDS), max_size=2)
relations = st.sampled_from([Rel.LT, Rel.LE])


@st.composite
def flexiwords(draw, max_len: int = 4) -> FlexiWord:
    n = draw(st.integers(min_value=0, max_value=max_len))
    ls = tuple(draw(letters) for _ in range(n))
    rs = tuple(draw(relations) for _ in range(max(0, n - 1)))
    return FlexiWord(ls, rs)


@st.composite
def labeled_dags(draw, max_vertices: int = 5) -> LabeledDag:
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    graph = OrderGraph()
    names = [f"u{i}" for i in range(n)]
    for name in names:
        graph.add_vertex(name)
    for i in range(n):
        for j in range(i + 1, n):
            kind = draw(st.sampled_from(["none", "none", "lt", "le"]))
            if kind == "lt":
                graph.add_edge(names[i], names[j], Rel.LT)
            elif kind == "le":
                graph.add_edge(names[i], names[j], Rel.LE)
    labels = {name: draw(letters) for name in names}
    return LabeledDag(graph, labels)


def dag_query(dag: LabeledDag) -> ConjunctiveQuery:
    from repro.core.atoms import ProperAtom
    from repro.core.sorts import ordvar

    atoms = []
    for vtx, preds in dag.labels.items():
        for p in sorted(preds):
            atoms.append(ProperAtom(p, (ordvar(vtx),)))
    term_of = {vtx: ordvar(vtx) for vtx in dag.graph.vertices}
    atoms.extend(dag.graph.to_atoms(term_of))
    return ConjunctiveQuery.from_atoms(
        atoms, {ordvar(vtx) for vtx in dag.graph.vertices}
    )


class TestFlexiWordOrderLaws:
    @given(flexiwords())
    def test_reflexive(self, p):
        assert flexi_le(p, p)

    @given(flexiwords(3), flexiwords(3), flexiwords(3))
    @settings(max_examples=150)
    def test_transitive(self, p, q, r):
        if flexi_le(p, q) and flexi_le(q, r):
            assert flexi_le(p, r)

    @given(flexiwords(3), flexiwords(3))
    def test_entailment_vs_models(self, q, p):
        assert flexi_entails(q, p) == naive_entails_flexi(
            LabeledDag.from_flexiword(q), p
        )

    @given(flexiwords(2), flexiwords(2))
    @settings(max_examples=100)
    def test_concatenation_monotone(self, p, q):
        """p is always dominated by p extended on the right."""
        extended = p.concat(Rel.LT, q)
        assert flexi_le(p, extended)

    @given(flexiwords(3))
    def test_subword_of_self_for_words(self, p):
        if p.is_word:
            assert is_subword(p, p)


class TestSeqProperties:
    @given(labeled_dags(), flexiwords(3))
    @settings(max_examples=200, deadline=None)
    def test_seq_equals_bruteforce(self, dag, p):
        assert seq_entails(dag, p) == naive_entails_flexi(dag, p)

    @given(labeled_dags(), flexiwords(3))
    @settings(max_examples=150, deadline=None)
    def test_countermodel_really_counters(self, dag, p):
        counter = seq_countermodel(dag, p)
        if counter is not None:
            assert counter in set(iter_minimal_words(dag))
            assert not flexi_entails(FlexiWord.word(counter), p)


class TestAlgorithmsAgree:
    @given(labeled_dags(4), labeled_dags(3))
    @settings(max_examples=120, deadline=None)
    def test_conjunctive_trio(self, dag, qdag):
        q = dag_query(qdag)
        expected = naive_entails_query(dag, q)
        assert paths_entails_dag(dag, qdag.normalized()) == expected
        assert bounded_width_entails_dag(dag, qdag.normalized()) == expected

    @given(labeled_dags(4), labeled_dags(2), labeled_dags(2))
    @settings(max_examples=80, deadline=None)
    def test_theorem53(self, dag, q1, q2):
        query = DisjunctiveQuery.of(dag_query(q1), dag_query(q2))
        assert theorem53_entails(dag, query) == naive_entails_query(dag, query)


class TestModelEnumeration:
    @given(labeled_dags())
    @settings(max_examples=150, deadline=None)
    def test_models_satisfy_their_database(self, dag):
        """Every minimal model satisfies the database read as a query."""
        qdag = dag.normalized()
        for word in iter_minimal_words(dag):
            assert word_satisfies_dag(word, qdag)

    @given(labeled_dags())
    @settings(max_examples=100, deadline=None)
    def test_count_matches_enumeration(self, dag):
        norm = dag.normalized()
        assert count_minimal_models(norm.graph) == sum(
            1 for _ in iter_minimal_words(dag)
        )

    @given(labeled_dags())
    @settings(max_examples=100, deadline=None)
    def test_block_structure(self, dag):
        """Blocks of every model: minors, '<='-closed, non-overlapping."""
        from repro.core.models import iter_block_sequences

        norm = dag.normalized()
        for blocks in iter_block_sequences(norm.graph):
            seen: set[str] = set()
            remaining = norm.graph
            for block in blocks:
                assert block <= remaining.minor_vertices()
                assert remaining.le_predecessor_closure(block) == block
                assert not (seen & block)
                seen |= block
                remaining = remaining.induced(remaining.vertices - block)
            assert seen == norm.graph.vertices


class TestNormalizationProperties:
    @given(labeled_dags())
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, dag):
        once = dag.normalized()
        twice = once.normalized()
        assert once.graph.vertices == twice.graph.vertices
        assert dict(once.labels) == dict(twice.labels)
        assert set(once.graph.edges()) == set(twice.graph.edges())

    @given(labeled_dags(), flexiwords(2))
    @settings(max_examples=100, deadline=None)
    def test_entailment_invariant(self, dag, p):
        assert seq_entails(dag, p) == seq_entails(dag.normalized(), p)

    @given(labeled_dags())
    @settings(max_examples=100, deadline=None)
    def test_width_bounds(self, dag):
        norm = dag.normalized()
        w = norm.width()
        assert 0 <= w <= len(norm.vertices)
        assert (w == 0) == (len(norm.vertices) == 0)
