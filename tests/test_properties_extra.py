"""Additional hypothesis properties: reduction, basis, classifier."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from test_properties import dag_query, flexiwords, labeled_dags
from repro.analysis import classify
from repro.core.atoms import Rel
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.flexiwords.flexiword import FlexiWord
from repro.flexiwords.subword import flexi_entails, is_subword
from repro.flexiwords.wqo import minimal_superwords, word_basis


class TestReducedGraphProperties:
    @given(labeled_dags(6))
    @settings(max_examples=120, deadline=None)
    def test_reduction_preserves_entailed_atoms(self, dag):
        g = dag.graph
        r = g.reduced()
        names = sorted(g.vertices)
        for x in names:
            for y in names:
                if x == y:
                    continue
                for rel in (Rel.LT, Rel.LE):
                    assert g.entails_atom(x, y, rel) == r.entails_atom(x, y, rel)

    @given(labeled_dags(6))
    @settings(max_examples=100, deadline=None)
    def test_reduction_never_adds_edges(self, dag):
        g = dag.graph
        r = g.reduced()
        original = {(u, v) for u, v, _ in g.edges()}
        kept = {(u, v) for u, v, _ in r.edges()}
        assert kept <= original

    @given(labeled_dags(6))
    @settings(max_examples=60, deadline=None)
    def test_successor_bound(self, dag):
        norm = dag.graph.normalize()
        if not norm.consistent:
            return
        r = norm.graph.reduced()
        k = r.width()
        for v in r.vertices:
            assert len(r.successors(v)) <= 2 * k


class TestBasisProperties:
    @given(st.lists(flexiwords(2), min_size=1, max_size=2))
    @settings(max_examples=60, deadline=None)
    def test_minimal_superwords_satisfy_all_paths(self, paths):
        for w in minimal_superwords(paths):
            fw = FlexiWord.word(w)
            assert all(flexi_entails(fw, p) for p in paths)

    @given(labeled_dags(3))
    @settings(max_examples=60, deadline=None)
    def test_basis_words_entail_the_query(self, qdag):
        from helpers import naive_entails_query
        from repro.core.database import LabeledDag

        q = dag_query(qdag)
        if q.normalized() is None:
            return
        basis = word_basis(q)
        for w in basis:
            dag = LabeledDag.from_flexiword(FlexiWord.word(w))
            assert naive_entails_query(dag, q)

    @given(labeled_dags(3))
    @settings(max_examples=40, deadline=None)
    def test_basis_upward_closure(self, qdag):
        """Adding letters to a basis word keeps it entailing (Lemma 6.4)."""
        from repro.flexiwords.wqo import word_entails_via_basis

        q = dag_query(qdag)
        if q.normalized() is None:
            return
        basis = word_basis(q)
        for w in list(basis)[:3]:
            padded = (frozenset(),) + w + (frozenset({"P"}),)
            assert word_entails_via_basis(padded, basis)


class TestClassifierTotality:
    @given(labeled_dags(4), labeled_dags(3))
    @settings(max_examples=80, deadline=None)
    def test_classify_never_fails(self, ddag, qdag):
        db = ddag.to_database()
        q = dag_query(qdag)
        profile = classify(db, q)
        assert profile.width >= 0
        assert profile.data_complexity
        assert profile.references
        assert isinstance(profile.summary(), str)

    @given(labeled_dags(4), labeled_dags(2), labeled_dags(2))
    @settings(max_examples=40, deadline=None)
    def test_disjunctive_classified_as_disjunctive(self, ddag, q1, q2):
        db = ddag.to_database()
        query = DisjunctiveQuery.of(dag_query(q1), dag_query(q2))
        profile = classify(db, query)
        normalized = query.normalized()
        if len(normalized.disjuncts) >= 2:
            assert not profile.conjunctive
