"""Tests for query objects: normalization, tightness, sequentiality, paths."""

from __future__ import annotations

import pytest

from repro.core.atoms import ProperAtom, le, lt, ne
from repro.core.errors import NotMonadicError, SortError
from repro.core.query import (
    ConjunctiveQuery,
    DisjunctiveQuery,
    as_conjunctive,
    as_dnf,
    eliminate_constants,
)
from repro.core.database import IndefiniteDatabase
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.flexiwords.flexiword import FlexiWord

t1, t2, t3 = ordvar("t1"), ordvar("t2"), ordvar("t3")
x = objvar("x")


def P(t):
    return ProperAtom("P", (t,))


def Q(t):
    return ProperAtom("Q", (t,))


class TestNormalization:
    def test_le_cycle_identifies_variables(self):
        q = ConjunctiveQuery.of(P(t1), Q(t2), le(t1, t2), le(t2, t1))
        n = q.normalized()
        assert n is not None
        assert len(n.order_variables()) == 1
        assert {a.pred for a in n.proper_atoms} == {"P", "Q"}
        only = next(iter(n.order_variables()))
        assert all(a.args == (only,) for a in n.proper_atoms)

    def test_inconsistent_query_normalizes_to_none(self):
        q = ConjunctiveQuery.of(P(t1), lt(t1, t2), le(t2, t1))
        assert q.normalized() is None
        assert not q.is_consistent()

    def test_extra_vars_survive_normalization(self):
        q = ConjunctiveQuery.from_atoms([], {t1})
        n = q.normalized()
        assert n is not None
        assert n.extra_order_vars == frozenset({t1})
        assert not n.is_empty()

    def test_empty_query_is_empty(self):
        assert ConjunctiveQuery.of().is_empty()


class TestClassification:
    def test_tightness(self):
        tight = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2))
        assert tight.is_tight()
        nontight = ConjunctiveQuery.of(P(t1), lt(t1, t2), lt(t2, t3), P(t3))
        assert not nontight.is_tight()

    def test_sequential(self):
        seq = ConjunctiveQuery.of(P(t1), Q(t2), lt(t1, t2), le(t2, t3))
        assert seq.is_sequential()
        nonseq = ConjunctiveQuery.of(P(t1), Q(t2), P(t3), lt(t1, t2), lt(t1, t3))
        assert not nonseq.is_sequential()

    def test_sequential_with_redundant_transitive_edge(self):
        q = ConjunctiveQuery.of(
            P(t1), Q(t2), P(t3), lt(t1, t2), lt(t2, t3), lt(t1, t3)
        )
        assert q.is_sequential()
        word = q.normalized().to_flexiword()
        assert str(word) == "{P} < {Q} < {P}"

    def test_monadic(self):
        assert ConjunctiveQuery.of(P(t1)).is_monadic()
        assert not ConjunctiveQuery.of(
            ProperAtom("R", (t1, x))
        ).is_monadic()
        # monadic over an *object* argument does not count
        assert not ConjunctiveQuery.of(ProperAtom("P", (x,))).is_monadic()

    def test_width(self):
        q = ConjunctiveQuery.of(P(t1), Q(t2), P(t3), lt(t1, t2), lt(t1, t3))
        assert q.width() == 2


class TestTightening:
    def test_tightened_deletes_loose_middle_variable(self):
        q = ConjunctiveQuery.of(P(t1), lt(t1, t2), lt(t2, t3), P(t3))
        tightened = q.tightened()
        assert tightened.is_tight()
        assert tightened.order_variables() == {t1, t3}
        # the derived t1 < t3 must survive the deletion of t2
        assert any(
            a.left == t1 and a.right == t3 for a in tightened.order_atoms
        )

    def test_full_adds_derived_atoms(self):
        q = ConjunctiveQuery.of(P(t1), le(t1, t2), lt(t2, t3), P(t3))
        full = q.full()
        assert any(
            a.left == t1 and a.right == t3 and a.rel.value == "<"
            for a in full.order_atoms
        )


class TestPathsAndFlexiwords:
    def test_roundtrip_through_flexiword(self):
        w = FlexiWord.parse("{P,Q} < {} <= {R}")
        q = ConjunctiveQuery.from_flexiword(w)
        assert q.is_sequential()
        assert str(q.to_flexiword()) == str(w)

    def test_paths_of_singleton(self):
        q = ConjunctiveQuery.of(P(t1))
        assert [str(p) for p in q.paths()] == ["{P}"]

    def test_monadic_dag_rejects_neq(self):
        q = ConjunctiveQuery.of(P(t1), P(t2), ne(t1, t2))
        with pytest.raises(NotMonadicError):
            q.monadic_dag()


class TestDisjunctive:
    def test_normalized_drops_inconsistent_disjuncts(self):
        good = ConjunctiveQuery.of(P(t1))
        bad = ConjunctiveQuery.of(P(t1), lt(t1, t1))
        q = DisjunctiveQuery.of(good, bad)
        assert len(q.normalized().disjuncts) == 1

    def test_or_composes(self):
        a = ConjunctiveQuery.of(P(t1))
        b = ConjunctiveQuery.of(Q(t1))
        combined = as_dnf(a).or_(b)
        assert len(combined.disjuncts) == 2

    def test_as_conjunctive(self):
        a = ConjunctiveQuery.of(P(t1))
        assert as_conjunctive(DisjunctiveQuery.of(a)) == a
        from repro.core.errors import NotConjunctiveError

        with pytest.raises(NotConjunctiveError):
            as_conjunctive(DisjunctiveQuery.of(a, ConjunctiveQuery.of(Q(t1))))


class TestConstantElimination:
    def test_order_constant_elimination(self):
        u = ordc("u")
        db = IndefiniteDatabase.of(P(u), Q(ordc("v")), lt(u, ordc("v")))
        q = ConjunctiveQuery.of(Q(u))  # constant in the query
        db2, q2 = eliminate_constants(db, q)
        assert not q2.constants()
        assert any(a.pred.startswith("Const_") for a in db2.proper_atoms)

    def test_object_constant_elimination(self):
        a = obj("A")
        db = IndefiniteDatabase.of(ProperAtom("R", (ordc("u"), a)))
        q = ConjunctiveQuery.of(ProperAtom("R", (t1, a)))
        db2, q2 = eliminate_constants(db, q)
        assert not q2.constants()

    def test_order_atoms_with_constants_rejected_in_graph(self):
        q = ConjunctiveQuery.of(lt(ordc("u"), t1))
        with pytest.raises(SortError):
            q.order_graph()
