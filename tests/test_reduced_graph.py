"""Tests for redundant-edge reduction (the Section 2 successor remark)."""

from __future__ import annotations

import random

import pytest

from repro.core.atoms import Rel, le, lt
from repro.core.ordergraph import OrderGraph
from repro.core.sorts import ordc
from repro.workloads.generators import random_labeled_dag


def o(name):
    return ordc(name)


class TestReduction:
    def test_transitive_lt_edge_removed(self):
        g = OrderGraph.from_atoms([lt(o("a"), o("b")), lt(o("b"), o("c")),
                                   lt(o("a"), o("c"))])
        r = g.reduced()
        assert r.edge_label("a", "c") is None
        assert r.edge_label("a", "b") is Rel.LT

    def test_le_implied_by_lt_removed(self):
        g = OrderGraph.from_atoms([lt(o("a"), o("b")), le(o("a"), o("b"))])
        # construction already keeps only the stronger edge
        assert g.edge_label("a", "b") is Rel.LT
        r = g.reduced()
        assert r.edge_label("a", "b") is Rel.LT

    def test_mixed_path_subsumes_lt(self):
        g = OrderGraph.from_atoms([le(o("a"), o("b")), lt(o("b"), o("c")),
                                   lt(o("a"), o("c"))])
        r = g.reduced()
        assert r.edge_label("a", "c") is None

    def test_le_not_subsumed_by_le_path_is_removed_too(self):
        g = OrderGraph.from_atoms([le(o("a"), o("b")), le(o("b"), o("c")),
                                   le(o("a"), o("c"))])
        r = g.reduced()
        assert r.edge_label("a", "c") is None

    @pytest.mark.parametrize("seed", range(10))
    def test_entailed_atoms_preserved(self, seed):
        rng = random.Random(seed)
        for _ in range(20):
            g = random_labeled_dag(rng, rng.randrange(0, 7), edge_prob=0.5).graph
            r = g.reduced()
            names = sorted(g.vertices)
            for x in names:
                for y in names:
                    if x == y:
                        continue
                    for rel in (Rel.LT, Rel.LE, Rel.NE):
                        assert g.entails_atom(x, y, rel) == r.entails_atom(
                            x, y, rel
                        ), (x, rel, y)

    @pytest.mark.parametrize("seed", range(6))
    def test_successor_bound_2k(self, seed):
        """The paper's remark: width-k databases need <= 2k successors."""
        rng = random.Random(100 + seed)
        for _ in range(15):
            g = random_labeled_dag(rng, rng.randrange(1, 8), edge_prob=0.6).graph
            norm = g.normalize()
            if not norm.consistent:
                continue
            reduced = norm.graph.reduced()
            k = reduced.width()
            for v in reduced.vertices:
                assert len(reduced.successors(v)) <= 2 * k

    def test_paper_optimality_example(self):
        """The database showing 2k successors are sometimes necessary:
        u <= v_i, v_i <= w_i, u < w_i for i = 1..k."""
        k = 3
        atoms = []
        for i in range(k):
            atoms.append(le(o("u"), o(f"v{i}")))
            atoms.append(le(o(f"v{i}"), o(f"w{i}")))
            atoms.append(lt(o("u"), o(f"w{i}")))
        g = OrderGraph.from_atoms(atoms)
        r = g.reduced()
        # none of u's 2k edges is redundant
        assert len(r.successors("u")) == 2 * k
        assert r.width() == k
