"""Cross-validation of every lower-bound reduction against its solver.

Each theorem's reduction claims ``D |= Phi  iff  <propositional fact>``;
we verify the equivalence exhaustively/randomly on small instances, with
entailment decided by the library and the propositional fact by the
from-scratch reference solvers.
"""

from __future__ import annotations

import random

import pytest

from repro.core.entailment import entails
from repro.reductions import coloring, expression, monotone3sat, pi2, tautology
from repro.reductions.monotone3sat import MonotoneSatInstance
from repro.reductions.pi2 import Pi2Instance
from repro.reductions.sat import (
    dnf_is_tautology,
    eval_formula,
    is_satisfiable,
    pi2_true,
    sat_dpll,
    sat_formula,
    three_colorable,
)
from repro.workloads.generators import random_dnf, random_graph


class TestSolvers:
    def test_dpll_simple(self):
        c1 = frozenset({("a", True), ("b", True)})
        c2 = frozenset({("a", False)})
        model = sat_dpll([c1, c2])
        assert model is not None and model["b"] and not model["a"]
        assert sat_dpll([c1, c2, frozenset({("b", False)})]) is None

    def test_dpll_vs_exhaustive(self):
        rng = random.Random(0)
        from itertools import product

        for _ in range(200):
            n = rng.randrange(1, 5)
            clauses = [
                frozenset(
                    (f"x{rng.randrange(n)}", rng.random() < 0.5)
                    for _ in range(rng.randrange(1, 4))
                )
                for _ in range(rng.randrange(1, 6))
            ]
            names = sorted({v for c in clauses for v, _ in c})
            exhaustive = any(
                all(
                    any(dict(zip(names, vals))[v] == pol for v, pol in c)
                    for c in clauses
                )
                for vals in product((False, True), repeat=len(names))
            )
            assert is_satisfiable(clauses) == exhaustive

    def test_pi2_examples(self):
        # forall p exists q . p xor q  — true
        xor = ("or", ("and", ("var", "p"), ("not", ("var", "q"))),
               ("and", ("not", ("var", "p")), ("var", "q")))
        assert pi2_true(["p"], ["q"], xor)
        # forall p exists q . p and q  — false (p = false kills it)
        assert not pi2_true(["p"], ["q"], ("and", ("var", "p"), ("var", "q")))

    def test_tautology_examples(self):
        # p or not p
        assert dnf_is_tautology([{"p0": True}, {"p0": False}], ["p0"])
        assert not dnf_is_tautology([{"p0": True}], ["p0"])
        # (p & q) or (not p) or (not q)
        assert dnf_is_tautology(
            [{"p0": True, "p1": True}, {"p0": False}, {"p1": False}],
            ["p0", "p1"],
        )

    def test_three_colorable(self):
        triangle = (["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")])
        assert three_colorable(*triangle)
        k4_vertices = ["a", "b", "c", "d"]
        k4_edges = [
            (u, v)
            for i, u in enumerate(k4_vertices)
            for v in k4_vertices[i + 1 :]
        ]
        assert not three_colorable(k4_vertices, k4_edges)


class TestTheorem32:
    def test_unsat_instance_entailed(self):
        # p; not p  (as monotone clauses with repeated literals)
        instance = MonotoneSatInstance(
            positive=(("p", "p", "p"),), negative=(("p", "p", "p"),)
        )
        db, query, expected = monotone3sat.reduction_claim(
            instance, bounded_width=True
        )
        assert expected is True
        assert entails(db, query) is True

    def test_sat_instance_not_entailed(self):
        instance = MonotoneSatInstance(
            positive=(("p", "q", "q"),), negative=(("q", "q", "q"),)
        )
        db, query, expected = monotone3sat.reduction_claim(
            instance, bounded_width=True
        )
        assert expected is False  # satisfiable: p=1, q=0
        assert entails(db, query) is False

    @pytest.mark.parametrize("seed", range(4))
    def test_random_bounded_width(self, seed):
        rng = random.Random(100 + seed)
        letters = [f"p{i}" for i in range(rng.randrange(1, 3))]
        pos = tuple(
            tuple(rng.choice(letters) for _ in range(3))
            for _ in range(rng.randrange(1, 3))
        )
        neg = tuple(
            tuple(rng.choice(letters) for _ in range(3))
            for _ in range(rng.randrange(0, 2))
        )
        instance = MonotoneSatInstance(positive=pos, negative=neg)
        db, query, expected = monotone3sat.reduction_claim(
            instance, bounded_width=True
        )
        assert entails(db, query) == expected

    def test_bounded_width_database_has_width_two(self):
        instance = MonotoneSatInstance(
            positive=(("p", "q", "r"), ("p", "p", "q")),
            negative=(("q", "r", "r"),),
        )
        db = monotone3sat.build_database(instance, bounded_width=True)
        assert db.width() == 2
        loose = monotone3sat.build_database(instance, bounded_width=False)
        assert loose.width() > 2


class TestTheorem33:
    @pytest.mark.parametrize(
        "universals,existentials,formula,comment",
        [
            (("p",), ("q",), ("or", ("var", "p"), ("var", "q")), "true"),
            (("p",), ("q",), ("and", ("var", "p"), ("var", "q")), "false"),
            (("p",), ("q",),
             ("or", ("and", ("var", "p"), ("not", ("var", "q"))),
              ("and", ("not", ("var", "p")), ("var", "q"))), "xor true"),
            ((), ("q",), ("var", "q"), "exists only"),
            (("p",), (), ("var", "p"), "forall p . p is false"),
            (("p",), (), ("or", ("var", "p"), ("not", ("var", "p"))), "valid"),
        ],
    )
    def test_examples(self, universals, existentials, formula, comment):
        inst = Pi2Instance(tuple(universals), tuple(existentials), formula)
        db, query, expected = inst.reduction()
        assert entails(db, query) == expected, comment

    def test_two_universals(self):
        # forall p0 p1 exists q . (p0 & p1) -> q  rendered positively:
        # not(p0 & p1) or q  == (not p0) or (not p1) or q : always true.
        f = ("or", ("or", ("not", ("var", "p0")), ("not", ("var", "p1"))),
             ("var", "q"))
        inst = Pi2Instance(("p0", "p1"), ("q",), f)
        db, query, expected = inst.reduction()
        assert expected is True
        assert entails(db, query) is True


class TestTheorem34:
    @pytest.mark.parametrize(
        "formula",
        [
            ("var", "a"),
            ("and", ("var", "a"), ("not", ("var", "a"))),
            ("or", ("var", "a"), ("not", ("var", "a"))),
            ("and", ("or", ("var", "a"), ("var", "b")), ("not", ("var", "a"))),
            ("and", ("var", "a"),
             ("and", ("not", ("var", "a")), ("var", "b"))),
        ],
    )
    def test_satisfiability_matches(self, formula):
        db, query, expected = expression.reduction_claim(formula)
        assert expected == sat_formula(formula)
        assert entails(db, query) == expected


class TestTheorem46:
    def test_tautology_entailed(self):
        disjuncts = [{"p0": True}, {"p0": False}]
        dag, query, expected = tautology.reduction_claim(disjuncts, 1)
        assert expected is True
        assert entails(dag.to_database(), query) is True

    def test_non_tautology_not_entailed(self):
        disjuncts = [{"p0": True, "p1": True}, {"p0": False}]
        dag, query, expected = tautology.reduction_claim(disjuncts, 2)
        assert expected is False
        assert entails(dag.to_database(), query) is False

    def test_query_paths_are_all_valuations(self):
        qdag = tautology.build_query_dag(3)
        paths = {p.letters for p in qdag.iter_paths()}
        assert len(paths) == 8
        assert qdag.width() == 2

    def test_database_paths_are_satisfying_valuations(self):
        disjuncts = [{"p0": True, "p1": False}]
        dag = tautology.build_database_dag(disjuncts, 2)
        words = {p.letters for p in dag.iter_paths()}
        # p0 must be T, p1 must be F: exactly one path.
        assert words == {(frozenset({"T"}), frozenset({"F"}))}

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances(self, seed):
        rng = random.Random(200 + seed)
        n_letters = rng.randrange(1, 3)
        disjuncts = random_dnf(rng, n_letters, rng.randrange(1, 4), 2)
        dag, query, expected = tautology.reduction_claim(disjuncts, n_letters)
        assert entails(dag.to_database(), query) == expected


class TestTheorem71:
    def test_part1_triangle(self):
        graph = (["a", "b", "c"], [("a", "b"), ("b", "c"), ("a", "c")])
        db, query, expected = coloring.part1_claim(graph)
        assert expected is True
        assert entails(db, query) is True

    def test_part1_k4(self):
        vertices = ["a", "b", "c", "d"]
        edges = [(u, v) for i, u in enumerate(vertices) for v in vertices[i + 1:]]
        db, query, expected = coloring.part1_claim((vertices, edges))
        assert expected is False
        assert entails(db, query) is False

    def test_part2_k4(self):
        vertices = ["a", "b", "c", "d"]
        edges = [(u, v) for i, u in enumerate(vertices) for v in vertices[i + 1:]]
        db, query, expected = coloring.part2_claim((vertices, edges))
        assert expected is True  # K4 not 3-colorable
        assert entails(db, query) is True

    @pytest.mark.parametrize("seed", range(5))
    def test_part1_random(self, seed):
        rng = random.Random(300 + seed)
        graph = random_graph(rng, rng.randrange(1, 5), 0.5)
        db, query, expected = coloring.part1_claim(graph)
        assert entails(db, query) == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_part2_random(self, seed):
        rng = random.Random(400 + seed)
        graph = random_graph(rng, rng.randrange(1, 5), 0.5)
        db, query, expected = coloring.part2_claim(graph)
        assert entails(db, query) == expected
