"""Read replicas: read-your-writes routing, failover, retry/backoff.

A *primary* ``ReproServer`` owns the writable session and its WAL; each
*replica* server hosts a read-only :class:`~repro.engine.wal.WalFollower`
session tailing that WAL, stamping every reply with ``applied_seq`` —
the primary ``seq`` its state covers.  :class:`ReplicaRouter` is the
client side: writes to the primary, reads over the replicas gated by
the session's last-write ``seq``, every infrastructure failure (lag,
crash, dead socket, timeout) absorbed by bounded waits, exponential
backoff and failover.

The centerpiece is the routed concurrent differential: N client
threads drive routers against a primary + 2 replicas with the three
replica fault sites armed (``server.replica.lag``,
``server.replica.crash``, ``wal.follower.stall``); each thread's reply
trace must match, payload for payload, a sequential replay of its
script against a primary-only server — and no read may ever observe an
``applied_seq`` older than that client's own last write.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time

import pytest

from repro.api import Session
from repro.engine import faults
from repro.engine.faults import FaultRule
from repro.engine.wal import WriteAheadLog
from repro.server import (
    ClientError,
    ClientTimeout,
    ReplicaRouter,
    ReproClient,
    ServerReplyError,
    ServerThread,
)
from repro.substrate.parser import parse_database

DB_TEXT = """
On(p1, lamp)
On(p2, heater)
Off(p3, lamp)
p1 < p3
p1 < p2
"""

JOIN = "On(s, X) & Off(t, X) & s < t"


def _session() -> Session:
    return Session(parse_database(DB_TEXT))


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


def _payload_of(reply: dict) -> str:
    """A reply's op payload as canonical JSON (routing metadata stripped)."""
    body = {
        k: v for k, v in reply.items() if k not in ("id", "seq", "applied_seq")
    }
    return json.dumps(body, sort_keys=True)


@pytest.fixture
def cluster(tmp_path):
    """One primary (WAL + fast heartbeat) and two tailing replicas."""
    path = str(tmp_path / "primary.wal")
    session = _session()
    wal = WriteAheadLog(path, sync="flush")
    wal.attach(session)
    primary = ServerThread(session, wal=wal, heartbeat_interval=0.05)
    p_addr = primary.start()
    replicas = [
        ServerThread(
            None, replica_of=path, poll_interval=0.01, heartbeat_timeout=2.0
        )
        for _ in range(2)
    ]
    r_addrs = [replica.start() for replica in replicas]
    yield p_addr, r_addrs, primary, replicas
    for replica in replicas:
        replica.shutdown()
    primary.shutdown()


def _await_applied(addr, seq: int, timeout: float = 10.0) -> dict:
    """Block until the replica at ``addr`` reports ``applied_seq >= seq``."""
    deadline = time.monotonic() + timeout
    with ReproClient(*addr) as client:
        while time.monotonic() < deadline:
            stats = client.stats()
            if stats["applied_seq"] >= seq:
                return stats
            time.sleep(0.01)
    raise AssertionError(f"replica at {addr} never reached seq {seq}")


# ---------------------------------------------------------------------------
# replica server semantics


class TestReplicaServer:
    def test_replica_serves_reads_with_applied_seq(self, cluster):
        p_addr, r_addrs, _, _ = cluster
        with ReproClient(*p_addr) as primary:
            seq = primary.assert_facts("On(p4, fan)\nOff(p5, fan)\np4 < p5")[
                "seq"
            ]
            expected = primary.answers(JOIN, ["X"])
        for addr in r_addrs:
            _await_applied(addr, seq)
            with ReproClient(*addr) as replica:
                reply = replica.answers(JOIN, ["X"])
                assert reply["applied_seq"] >= seq
                assert _payload_of(reply) == _payload_of(expected)

    def test_replica_rejects_primary_only_ops(self, cluster):
        _, r_addrs, _, _ = cluster
        with ReproClient(*r_addrs[0]) as replica:
            rejected = [
                replica.call("assert", check=False, facts="On(p9, tv)"),
                replica.call("retract", check=False, facts="On(p1, lamp)"),
                replica.call("batch", check=False, lines=["assert: Zero()"]),
                replica.call("prepare", check=False, query=JOIN),
                replica.call(
                    "watch", check=False, query="On(s, X)", free_vars=["X"]
                ),
            ]
            for reply in rejected:
                assert reply["ok"] is False
                assert reply["error"]["type"] == "ReadOnly"
                assert "applied_seq" in reply
            # routing signal, not protocol damage: the connection lives
            assert replica.ping()["pong"] is True
            assert replica.stats()["role"] == "replica"

    def test_min_seq_gates_stale_reads(self, cluster):
        p_addr, r_addrs, _, _ = cluster
        # freeze both followers, then write past them
        faults.install([FaultRule(faults.SITE_FOLLOWER_STALL, times=0)])
        with ReproClient(*p_addr) as primary:
            seq = primary.assert_facts("On(p6, amp)")["seq"]
        with ReproClient(*r_addrs[0]) as replica:
            stale = replica.call(
                "execute", check=False, query="On(p6, amp)", min_seq=seq
            )
            assert stale["ok"] is False
            assert stale["error"]["type"] == "ReplicaLagging"
            assert stale["applied_seq"] < seq
            # ungated reads still serve the (stale) state
            assert replica.execute("On(p1, lamp)")["entailed"] is True
            faults.reset()  # unfreeze: the gate opens once caught up
            _await_applied(r_addrs[0], seq)
            fresh = replica.call("execute", query="On(p6, amp)", min_seq=seq)
            assert fresh["entailed"] is True
            assert fresh["applied_seq"] >= seq

    def test_replica_detects_rebase_after_primary_compaction(self, tmp_path):
        path = str(tmp_path / "compact.wal")
        session = _session()
        wal = WriteAheadLog(path, sync="flush", compact_every=2)
        wal.attach(session)
        primary = ServerThread(session, wal=wal, heartbeat_interval=0.05)
        p_addr = primary.start()
        replica = ServerThread(
            None, replica_of=path, poll_interval=0.01, heartbeat_timeout=2.0
        )
        r_addr = replica.start()
        try:
            with ReproClient(*p_addr) as client:
                seq = 0
                for i in range(5):
                    seq = client.assert_facts(f"On(q{i}, d{i})")["seq"]
                expected = client.answers("On(s, X)", ["X"])
            stats = _await_applied(r_addr, seq)
            assert stats["rebases"] >= 1
            with ReproClient(*r_addr) as client:
                assert _payload_of(client.answers("On(s, X)", ["X"])) == (
                    _payload_of(expected)
                )
        finally:
            replica.shutdown()
            primary.shutdown()

    def test_primary_restart_resumes_seq_past_replica_tokens(self, tmp_path):
        """Read-your-writes must survive a primary crash/restart.

        A replica's ``applied_seq`` only ratchets upward; if a restarted
        primary started numbering replies at 1 again, the ``min_seq``
        gate would pass trivially and a replica could serve state
        predating the client's acknowledged write.  The primary must
        instead resume ``seq`` from the WAL's mark high-water.
        """
        path = str(tmp_path / "restart.wal")
        session = _session()
        wal = WriteAheadLog(path, sync="flush").attach(session)
        primary = ServerThread(session, wal=wal, heartbeat_interval=0.05)
        p_addr = primary.start()
        replica = ServerThread(
            None, replica_of=path, poll_interval=0.01, heartbeat_timeout=30.0
        )
        r_addr = replica.start()
        try:
            with ReproClient(*p_addr) as client:
                for i in range(3):
                    seq = client.assert_facts(f"On(w{i}, d{i})")["seq"]
            _await_applied(r_addr, seq)
            primary.shutdown()

            # the restarted primary recovers both the state and the seq
            session2 = Session.recover(path)
            wal2 = WriteAheadLog(path, sync="flush").attach(session2)
            primary2 = ServerThread(session2, wal=wal2, heartbeat_interval=0.05)
            p2_addr = primary2.start()
            try:
                with ReproClient(*p2_addr) as client:
                    reply = client.assert_facts("On(w9, fresh)")
                    assert reply["seq"] > seq  # never back below the tokens
                stats = _await_applied(r_addr, reply["seq"])
                assert stats["applied_seq"] >= reply["seq"]
                with ReproClient(*r_addr) as rc:
                    gated = rc.call(
                        "execute", query="On(w9, fresh)", min_seq=reply["seq"]
                    )
                    # a min_seq-gated read that passes really has the write
                    assert gated["entailed"] is True
                    assert gated["applied_seq"] >= reply["seq"]
            finally:
                primary2.shutdown()
        finally:
            replica.shutdown()

    def test_replica_reports_primary_death_and_keeps_serving(self, tmp_path):
        path = str(tmp_path / "dying.wal")
        session = _session()
        wal = WriteAheadLog(path, sync="flush")
        wal.attach(session)
        primary = ServerThread(session, wal=wal, heartbeat_interval=0.05)
        p_addr = primary.start()
        replica = ServerThread(
            None, replica_of=path, poll_interval=0.01, heartbeat_timeout=0.3
        )
        r_addr = replica.start()
        try:
            with ReproClient(*p_addr) as client:
                seq = client.assert_facts("On(p7, mixer)")["seq"]
            stats = _await_applied(r_addr, seq)
            assert stats["primary_alive"] is True
            primary.shutdown()
            deadline = time.monotonic() + 10
            with ReproClient(*r_addr) as client:
                while time.monotonic() < deadline:
                    if client.stats()["primary_alive"] is False:
                        break
                    time.sleep(0.02)
                else:
                    raise AssertionError("replica never noticed primary death")
                # orphaned but readable: the last applied state survives
                assert client.execute("On(p7, mixer)")["entailed"] is True
        finally:
            replica.shutdown()


# ---------------------------------------------------------------------------
# client router


class TestReplicaRouter:
    def test_read_your_writes_lands_on_replicas(self, cluster):
        p_addr, r_addrs, _, _ = cluster
        with ReplicaRouter(p_addr, r_addrs, wait_timeout=10.0) as router:
            for i in range(4):
                router.assert_facts(f"On(r{i}, dev{i})")
                reply = router.execute(f"On(r{i}, dev{i})")
                assert reply["entailed"] is True
                # the invariant the whole design exists for: a routed
                # read never observes state older than our last write
                assert reply.get(
                    "applied_seq", router.last_write_seq
                ) >= router.last_write_seq
            assert router.counters["reads"] == 4
            assert router.counters["replica_reads"] == 4
            assert router.counters["primary_fallbacks"] == 0

    def test_bounded_wait_falls_back_to_primary(self, cluster):
        p_addr, r_addrs, _, _ = cluster
        faults.install([FaultRule(faults.SITE_FOLLOWER_STALL, times=0)])
        delays: list[float] = []
        router = ReplicaRouter(
            p_addr,
            r_addrs,
            wait_timeout=0.3,
            backoff=0.01,
            rng=random.Random(0),
            sleep=lambda s: (delays.append(s), time.sleep(min(s, 0.05)))[0],
        )
        with router:
            router.assert_facts("On(r9, drill)")
            reply = router.execute("On(r9, drill)")
            assert reply["entailed"] is True
            assert "applied_seq" not in reply  # the primary answered
            assert router.counters["primary_fallbacks"] == 1
            assert router.counters["lag_waits"] >= 1
        assert delays  # it backed off while the replicas were stuck

    def test_failover_skips_a_dead_replica(self, cluster):
        p_addr, r_addrs, _, replicas = cluster
        replicas[0].shutdown()
        router = ReplicaRouter(p_addr, r_addrs, down_cooldown=60.0)
        with router:
            router.assert_facts("On(r8, saw)")
            for _ in range(4):
                assert router.execute("On(r8, saw)")["entailed"] is True
            # the dead replica cost at most one failover (then its
            # cooldown parks it); the live one served every read
            assert router.counters["replica_reads"] == 4
            assert router.counters["primary_fallbacks"] == 0
            assert router.counters["failovers"] >= 1

    def test_replica_crash_fault_site_is_absorbed(self, cluster):
        p_addr, r_addrs, _, _ = cluster
        with ReplicaRouter(p_addr, r_addrs, down_cooldown=0.05) as router:
            router.assert_facts("On(r7, pump)")
            faults.install([FaultRule(faults.SITE_REPLICA_CRASH, times=1)])
            for _ in range(4):
                assert router.execute("On(r7, pump)")["entailed"] is True
            assert router.counters["failovers"] >= 1
            stats = [s for s in router.replica_stats() if s is not None]
            assert sum(s["replica_crashes"] for s in stats) == 1

    def test_backoff_is_exponential_jittered_and_capped(self):
        router = ReplicaRouter(
            ("127.0.0.1", 1),  # never connected: delays are pure math
            backoff=0.05,
            backoff_max=0.4,
            jitter=0.25,
            rng=random.Random(42),
            sleep=lambda _s: None,
        )
        delays = [router._backoff_delay(attempt) for attempt in range(8)]
        for attempt, delay in enumerate(delays):
            base = min(0.05 * 2**attempt, 0.4)
            assert base <= delay <= base * 1.25
        assert delays[0] < delays[3]  # growth before the cap

    def test_cli_connect_list_builds_a_router(self):
        import argparse

        from repro.cli import _remote_client

        args = argparse.Namespace(connect="h0:1,h1:2,h2:3", wal=None)
        client = _remote_client(args)
        assert isinstance(client, ReplicaRouter)
        assert client._primary_addr == ("h0", 1)
        assert client._replica_addrs == [("h1", 2), ("h2", 3)]


class TestClientTimeout:
    def test_silent_server_raises_client_timeout(self):
        silent = socket.socket()
        try:
            silent.bind(("127.0.0.1", 0))
            silent.listen(1)
            host, port = silent.getsockname()
            client = ReproClient(host, port, timeout=0.2)
            try:
                started = time.monotonic()
                with pytest.raises(ClientTimeout):
                    client.ping()
                assert time.monotonic() - started < 5.0
            finally:
                client.close()
        finally:
            silent.close()

    def test_default_is_no_timeout(self, cluster):
        p_addr, _, _, _ = cluster
        with ReproClient(*p_addr) as client:
            assert client.timeout is None
            assert client._sock.gettimeout() is None
            assert client.ping()["pong"] is True


# ---------------------------------------------------------------------------
# the acceptance differential: routed + faulted == primary-only sequential


def _client_script(tid: int) -> list[tuple]:
    """One client's ops over its private keyspace (monotone writes).

    Each read's expected payload is a pure function of the client's own
    preceding writes — other clients touch other predicates — so the
    routed trace can be replayed sequentially client by client.
    """
    script: list[tuple] = []
    for i in range(6):
        script.append(("write", f"T{tid}(c{i})\nT{tid}(c{i}x)"))
        script.append(("answers", f"T{tid}(X)"))
        script.append(("execute", f"T{tid}(c{i})"))
        if i == 3:
            script.append(("answers", f"T{tid}(X) &"))  # a parse error
    return script


def _run_script(client, script, trace, invariants=None):
    for kind, arg in script:
        if kind == "write":
            reply = client.assert_facts(arg)
        elif kind == "answers":
            min_seq = getattr(client, "last_write_seq", 0)
            reply = client.answers(arg, ["X"], check=False)
        else:
            min_seq = getattr(client, "last_write_seq", 0)
            reply = client.execute(arg, check=False)
        if kind != "write" and invariants is not None and "applied_seq" in reply:
            invariants.append((reply["applied_seq"], min_seq))
        trace.append((kind, _payload_of(reply)))


class TestRoutedDifferential:
    def test_faulted_routed_stream_equals_primary_only_replay(self, cluster):
        p_addr, r_addrs, _, _ = cluster
        n_clients = 3
        faults.install([
            FaultRule(faults.SITE_REPLICA_LAG, times=0, prob=0.5, seed=7),
            FaultRule(faults.SITE_REPLICA_CRASH, after=3, times=2),
            FaultRule(faults.SITE_FOLLOWER_STALL, times=0, prob=0.3, seed=3),
        ])
        traces: dict[int, list] = {tid: [] for tid in range(n_clients)}
        invariants: dict[int, list] = {tid: [] for tid in range(n_clients)}
        counters: dict[int, dict] = {}
        errors: list[BaseException] = []

        def run_client(tid: int) -> None:
            try:
                router = ReplicaRouter(
                    p_addr,
                    r_addrs,
                    timeout=30.0,
                    wait_timeout=10.0,
                    down_cooldown=0.002,
                    backoff=0.01,
                )
                with router:
                    _run_script(
                        router,
                        _client_script(tid),
                        traces[tid],
                        invariants[tid],
                    )
                    counters[tid] = dict(router.counters)
            except BaseException as exc:  # surfaced in the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=run_client, args=(tid,))
            for tid in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not errors, errors
        faults.reset()

        # Invariant: no routed read ever observed replica state older
        # than that client's own last acknowledged write.  (A client
        # whose every read fell back to the primary — possible when the
        # crash fault downs both replicas at just the wrong moments —
        # is trivially consistent; the fleet as a whole must still have
        # exercised the replica path.)
        assert sum(c["replica_reads"] for c in counters.values()) >= 1
        for tid in range(n_clients):
            for applied_seq, min_seq in invariants[tid]:
                assert applied_seq >= min_seq

        # Differential: each client's trace payload-for-payload equals
        # a sequential replay against a fresh primary-only server.
        replay = ServerThread(_session())
        host, port = replay.start()
        try:
            for tid in range(n_clients):
                expected: list = []
                with ReproClient(host, port) as client:
                    _run_script(client, _client_script(tid), expected)
                assert traces[tid] == expected
        finally:
            replay.shutdown()
