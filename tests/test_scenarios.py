"""Tests for the named scenario builders (the paper's running examples)."""

from __future__ import annotations

import pytest

from repro.core.entailment import entails
from repro.core.semantics import Semantics
from repro.workloads.scenarios import (
    alignment_database,
    alignment_mismatch_violation,
    before_query,
    espionage_database,
    espionage_integrity,
    espionage_twice,
    plan_database,
    seriation_database,
)


class TestEspionageScenario:
    """The full Example 1.1 verdict set, via the scenario builders."""

    def test_paper_answers(self):
        db = espionage_database()
        psi = espionage_integrity()
        someone = psi.or_(espionage_twice(None))
        assert entails(db, someone, semantics=Semantics.Q)
        for agent in ("A", "B"):
            single = psi.or_(espionage_twice(agent))
            assert not entails(db, single, semantics=Semantics.Q)

    def test_width_two(self):
        assert espionage_database().width() == 2


class TestAlignmentScenario:
    def test_any_pair_alignable_with_gaps(self):
        dag = alignment_database(["CG", "AT"])
        assert not entails(dag.to_database(), alignment_mismatch_violation())

    def test_violation_structure(self):
        v = alignment_mismatch_violation("CGAT")
        assert len(v.disjuncts) == 6  # C(4,2) pairs

    def test_identical_sequences_align_everywhere(self):
        dag = alignment_database(["CAT", "CAT"])
        from repro.core.models import iter_minimal_words

        fully_merged = tuple(
            frozenset({c}) for c in "CAT"
        )
        assert fully_merged in set(iter_minimal_words(dag))


class TestSeriationScenario:
    def test_consistency(self):
        db = seriation_database(
            ["a", "b", "c"], [{"a", "b"}, {"b", "c"}]
        )
        assert db.is_consistent()
        assert entails(db, before_query("Start_a", "End_b"))
        assert not entails(db, before_query("Start_a", "End_c"))


class TestPlanScenario:
    def test_width_equals_streams(self):
        db = plan_database([["x", "y"], ["z"], ["w", "q"]])
        assert db.width() == 3

    def test_within_stream_order_certain(self):
        db = plan_database([["compile", "link"], ["test"]])
        assert entails(db, before_query("compile", "link"))
        assert not entails(db, before_query("compile", "test"))
