"""Tests for the Fin/Z/Q semantics and the Section 2 reductions."""

from __future__ import annotations

import random

import pytest

from repro.core.atoms import ProperAtom, le, lt
from repro.core.database import IndefiniteDatabase
from repro.core.entailment import entails
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery, as_dnf
from repro.core.semantics import (
    Semantics,
    is_tight,
    pad_for_integers,
    tighten_for_rationals,
    transform,
)
from repro.core.sorts import ordc, ordvar

t1, t2, t3 = ordvar("t1"), ordvar("t2"), ordvar("t3")
u, v = ordc("u"), ordc("v")


def P(t):
    return ProperAtom("P", (t,))


class TestPaperExamples:
    def test_two_points_exist(self):
        """|=_Z exists t1 < t2 but not |=_Fin exists t1 < t2 (single-point
        and empty finite orders)."""
        q = ConjunctiveQuery.of(lt(t1, t2))
        empty = IndefiniteDatabase.empty()
        assert not entails(empty, q, semantics=Semantics.FIN)
        assert entails(empty, q, semantics=Semantics.Z)
        assert entails(empty, q, semantics=Semantics.Q)

    def test_density_example(self):
        """D = [P(u), P(v), u < v] |=_Q exists t1 < t2 < t3 with P at the
        endpoints, but not |=_Z (u and v may be adjacent integers)."""
        db = IndefiniteDatabase.of(P(u), P(v), lt(u, v))
        q = ConjunctiveQuery.of(P(t1), lt(t1, t2), lt(t2, t3), P(t3))
        assert entails(db, q, semantics=Semantics.Q)
        assert not entails(db, q, semantics=Semantics.Z)
        assert not entails(db, q, semantics=Semantics.FIN)

    def test_proposition_2_1_containments(self):
        """|=_Fin implies |=_Z implies |=_Q on random nontight queries."""
        rng = random.Random(0)
        from repro.workloads.generators import (
            random_conjunctive_monadic_query,
            random_monadic_database,
        )

        for _ in range(40):
            db = random_monadic_database(rng, rng.randrange(0, 4))
            q = random_conjunctive_monadic_query(rng, rng.randrange(0, 4))
            fin = entails(db, q, semantics=Semantics.FIN)
            z = entails(db, q, semantics=Semantics.Z)
            dense = entails(db, q, semantics=Semantics.Q)
            assert (not fin or z) and (not z or dense)

    def test_proposition_2_2_tight_queries_agree(self):
        rng = random.Random(1)
        from repro.workloads.generators import (
            random_conjunctive_monadic_query,
            random_monadic_database,
        )

        checked = 0
        while checked < 30:
            db = random_monadic_database(rng, rng.randrange(0, 4))
            q = random_conjunctive_monadic_query(
                rng, rng.randrange(0, 4), empty_ok=False
            )
            if not is_tight(q):
                continue
            answers = {
                entails(db, q, semantics=s)
                for s in (Semantics.FIN, Semantics.Z, Semantics.Q)
            }
            assert len(answers) == 1
            checked += 1


class TestTransformations:
    def test_padding_adds_chains(self):
        db = IndefiniteDatabase.of(P(u))
        q = ConjunctiveQuery.of(P(t1), lt(t2, t1))
        padded = pad_for_integers(db, q)
        # 2 variables -> 2 low + 2 high constants
        assert len(padded.order_constants) == len(db.order_constants) + 4
        assert padded.is_consistent()

    def test_padding_no_order_vars_is_identity(self):
        db = IndefiniteDatabase.of(P(u))
        q = ConjunctiveQuery.of(ProperAtom("Obj", (ordvar("t1"),)))
        # one order var -> padded; zero -> identity
        q0 = ConjunctiveQuery.of()
        assert pad_for_integers(db, q0) == db

    def test_tightening_produces_tight_query(self):
        q = DisjunctiveQuery.of(
            ConjunctiveQuery.of(P(t1), lt(t1, t2), lt(t2, t3), P(t3)),
            ConjunctiveQuery.of(P(t1), le(t1, t2)),
        )
        tightened = tighten_for_rationals(q)
        assert is_tight(tightened)

    def test_transform_dispatch(self):
        db = IndefiniteDatabase.of(P(u))
        q = as_dnf(ConjunctiveQuery.of(P(t1), lt(t1, t2)))
        db_fin, q_fin = transform(db, q, Semantics.FIN)
        assert db_fin == db and q_fin.disjuncts == q.disjuncts
        db_z, q_z = transform(db, q, Semantics.Z)
        assert len(db_z.order_constants) > len(db.order_constants)
        db_q, q_q = transform(db, q, Semantics.Q)
        assert db_q == db and is_tight(q_q)

    def test_tight_query_skips_transform(self):
        db = IndefiniteDatabase.of(P(u))
        q = as_dnf(ConjunctiveQuery.of(P(t1)))
        for sem in (Semantics.Z, Semantics.Q):
            db2, q2 = transform(db, q, sem)
            assert db2 == db


class TestSemanticsCrossValidation:
    @pytest.mark.parametrize("seed", range(5))
    def test_z_entailment_via_large_padding(self, seed):
        """Doubling the padding must not change the Z verdict (sanity for
        Proposition 2.3: any sufficiently large padding is equivalent)."""
        rng = random.Random(10 + seed)
        from repro.workloads.generators import (
            random_conjunctive_monadic_query,
            random_monadic_database,
        )

        for _ in range(10):
            db = random_monadic_database(rng, rng.randrange(0, 3))
            q = random_conjunctive_monadic_query(rng, rng.randrange(1, 3))
            once = entails(pad_for_integers(db, q), q)
            twice = entails(
                pad_for_integers(pad_for_integers(db, q), q), q
            )
            assert once == twice
