"""Tests for the SEQ algorithm (Figure 6 / Lemma 4.2 / Corollary 4.3)."""

from __future__ import annotations

import random

import pytest

from helpers import naive_entails_flexi, naive_word_satisfies_flexi
from repro.algorithms.seq import seq_countermodel, seq_entails, seq_entails_query
from repro.core.atoms import Rel
from repro.core.database import LabeledDag
from repro.core.models import iter_minimal_words
from repro.core.query import ConjunctiveQuery
from repro.flexiwords.flexiword import FlexiWord, letter
from repro.workloads.generators import random_flexiword, random_labeled_dag

P, Q, R = letter("P"), letter("Q"), letter("R")
LT, LE = Rel.LT, Rel.LE


def dag_of(word: str) -> LabeledDag:
    return LabeledDag.from_flexiword(FlexiWord.parse(word))


class TestSeqBasics:
    def test_empty_query_always_entailed(self):
        assert seq_entails(dag_of("{P} < {Q}"), FlexiWord.empty())
        assert seq_entails(LabeledDag.from_flexiword(FlexiWord.empty()), FlexiWord.empty())

    def test_empty_database_fails_nonempty_query(self):
        empty = LabeledDag.from_flexiword(FlexiWord.empty())
        assert not seq_entails(empty, FlexiWord.parse("{P}"))
        assert seq_countermodel(empty, FlexiWord.parse("{P}")) == ()

    def test_single_fact(self):
        assert seq_entails(dag_of("{P}"), FlexiWord.parse("{P}"))
        assert not seq_entails(dag_of("{P}"), FlexiWord.parse("{Q}"))

    def test_chain_subword(self):
        d = dag_of("{P} < {Q} < {R}")
        assert seq_entails(d, FlexiWord.parse("{P} < {R}"))
        assert seq_entails(d, FlexiWord.parse("{P} <= {R}"))
        assert not seq_entails(d, FlexiWord.parse("{R} < {P}"))

    def test_le_database_edge_not_strict(self):
        # u <= v permits u = v, so a strict query is not entailed ...
        d = dag_of("{P} <= {Q}")
        assert not seq_entails(d, FlexiWord.parse("{P} < {Q}"))
        # ... but the '<=' query is.
        assert seq_entails(d, FlexiWord.parse("{P} <= {Q}"))

    def test_incomparable_vertices(self):
        d = LabeledDag.from_chains([FlexiWord.parse("{P}"), FlexiWord.parse("{Q}")])
        assert not seq_entails(d, FlexiWord.parse("{P} < {Q}"))
        assert not seq_entails(d, FlexiWord.parse("{P} <= {Q}"))
        # Both may collapse to one point, where both predicates hold:
        assert not seq_entails(d, FlexiWord.parse("{P,Q}"))
        # ... but P and Q each hold somewhere in every model:
        assert seq_entails(d, FlexiWord.parse("{P}"))
        assert seq_entails(d, FlexiWord.parse("{Q}"))

    def test_empty_letter_means_some_point(self):
        assert seq_entails(dag_of("{P}"), FlexiWord.parse("{}"))
        empty = LabeledDag.from_flexiword(FlexiWord.empty())
        assert not seq_entails(empty, FlexiWord.parse("{}"))

    def test_width_two_merge(self):
        # Two chains P<Q and Q<P: every model satisfies "P then Q"? No:
        # models may realize either order or merge the chains.
        d = LabeledDag.from_chains(
            [FlexiWord.parse("{P} < {Q}"), FlexiWord.parse("{Q} < {P}")]
        )
        assert seq_entails(d, FlexiWord.parse("{P} < {Q}"))
        assert seq_entails(d, FlexiWord.parse("{Q} < {P}"))


class TestSeqCountermodel:
    def test_countermodel_is_model_and_fails_query(self):
        rng = random.Random(7)
        for _ in range(300):
            dag = random_labeled_dag(rng, rng.randrange(0, 6))
            p = random_flexiword(rng, rng.randrange(0, 4))
            counter = seq_countermodel(dag, p)
            if counter is None:
                continue
            assert not naive_word_satisfies_flexi(counter, p)
            assert counter in set(iter_minimal_words(dag))


class TestSeqAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_agreement(self, seed):
        rng = random.Random(seed)
        for _ in range(60):
            dag = random_labeled_dag(
                rng,
                rng.randrange(0, 6),
                edge_prob=rng.choice([0.2, 0.4, 0.7]),
                le_prob=rng.choice([0.0, 0.3, 0.6]),
            )
            p = random_flexiword(
                rng, rng.randrange(0, 4), le_prob=rng.choice([0.0, 0.4])
            )
            expected = naive_entails_flexi(dag, p)
            assert seq_entails(dag, p) == expected, (
                f"dag={dag.to_database()} p={p}"
            )


class TestSeqQueryInterface:
    def test_sequential_query_object(self):
        d = dag_of("{P} < {Q}")
        q = ConjunctiveQuery.from_flexiword(FlexiWord.parse("{P} <= {Q}"))
        assert seq_entails_query(d, q)

    def test_non_sequential_rejected(self):
        from repro.core.errors import NotSequentialError
        from repro.workloads.generators import random_conjunctive_monadic_query

        rng = random.Random(0)
        while True:
            q = random_conjunctive_monadic_query(rng, 4, edge_prob=0.2)
            n = q.normalized()
            if n is not None and not n.is_sequential():
                break
        with pytest.raises(NotSequentialError):
            seq_entails_query(dag_of("{P}"), q)
