"""Serving-tier tests: concurrency, protocol robustness, drain, faults.

The centerpiece is the concurrent-client differential: N threads fire
interleaved reads and writes at one :class:`ReproServer`, every reply
carries the server's global ``seq``, and the whole trace — sorted by
``seq`` — is replayed op by op on a fresh sequential
:class:`~repro.api.session.Session`.  Every reply payload must match
the replay byte for byte (as canonical JSON), errors included: the
serving tier's one-queue/one-engine discipline *defines* concurrent
execution as the sequential stream in arrival order, and this test is
that definition made executable.

Around it: wire-protocol failure handling (structured error replies
for well-framed garbage, fatal-frame-then-close for framing breaks),
backpressure (``max_inflight`` caps pipelining; a slow watch consumer
is dropped rather than buffered forever), graceful drain (queued ops
answered, WAL group-commit window flushed, then sockets close), and
the ``server.conn.drop`` fault site (one client sees a severed
connection; the server keeps serving everyone else).
"""

from __future__ import annotations

import json
import struct
import threading

import pytest

from repro.api import Session
from repro.cli import _SEMANTICS, _result_payload
from repro.core.sorts import objvar
from repro.engine import faults
from repro.engine.batch import Mutation, QueryRequest
from repro.engine.faults import FaultRule
from repro.engine.wal import WriteAheadLog
from repro.server import (
    MAX_FRAME,
    ClientError,
    ProtocolError,
    ReproClient,
    ServerReplyError,
    ServerThread,
)
from repro.substrate.parser import parse_database, parse_query, scan_order_names

DB_TEXT = """
On(p1, lamp)
On(p2, heater)
Off(p3, lamp)
p1 < p3
p1 < p2
"""

#: the join every read below asks: which devices certainly went
#: on-then-off?
JOIN = "On(s, X) & Off(t, X) & s < t"


def _session() -> Session:
    return Session(parse_database(DB_TEXT))


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def served():
    thread = ServerThread(_session())
    host, port = thread.start()
    yield thread, host, port
    thread.shutdown()


def _payload_of(reply: dict) -> str:
    """A reply's op payload as canonical JSON (id/seq/ok stripped)."""
    body = {k: v for k, v in reply.items() if k not in ("id", "seq", "ok")}
    return json.dumps(body, sort_keys=True)


# ---------------------------------------------------------------------------
# basic op surface


class TestOps:
    def test_ping_execute_answers(self, served):
        _, host, port = served
        with ReproClient(host, port) as client:
            assert client.ping()["pong"] is True
            reply = client.execute("On(s, lamp) & Off(t, lamp) & s < t")
            assert reply["entailed"] is True and reply["seq"] >= 1
            reply = client.answers(JOIN, ["X"])
            assert reply["answers"] == [["lamp"]] and reply["count"] == 1

    def test_prepare_handle_roundtrip_and_release(self, served):
        _, host, port = served
        with ReproClient(host, port) as client:
            handle = client.prepare(JOIN, ["X"])
            by_handle = client.answers(handle=handle)
            by_text = client.answers(JOIN, ["X"])
            assert _payload_of(by_handle) == _payload_of(by_text)
            assert client.call("release", handle=handle)["released"] is True
            with pytest.raises(ServerReplyError) as err:
                client.answers(handle=handle)
            assert err.value.type == "PayloadError"

    def test_handle_namespaces_are_per_connection(self, served):
        _, host, port = served
        with ReproClient(host, port) as one, ReproClient(host, port) as two:
            h1 = one.prepare(JOIN, ["X"])
            # the other connection gets its own counter and cannot see
            # the first connection's plans
            with pytest.raises(ServerReplyError) as err:
                two.answers(handle=h1)
            assert err.value.type == "PayloadError"
            assert two.prepare("On(s, X)", ["X"]) == h1

    def test_mutations_change_later_reads(self, served):
        _, host, port = served
        query = "On(s, heater) & Off(t, heater) & s < t"
        with ReproClient(host, port) as client:
            assert client.execute(query)["entailed"] is False
            applied = client.assert_facts("Off(p4, heater); p2 < p4")
            assert applied["applied"] == 2
            assert client.execute(query)["entailed"] is True
            client.retract_facts("Off(p4, heater)")
            assert client.execute(query)["entailed"] is False

    def test_batch_rows_match_cli_shape(self, served):
        _, host, port = served
        with ReproClient(host, port) as client:
            reply = client.batch([
                "assert: Off(p4, heater); p2 < p4",
                f"answers(X): {JOIN}",
                "On(s, lamp) & Off(t, lamp) & s < t",
            ])
            assert reply["mode"] == "stream"
            kinds = [row["kind"] for row in reply["ops"]]
            assert kinds == ["assert_facts", "query", "query"]
            assert reply["ops"][1]["answers"] == [["heater"], ["lamp"]]
            assert reply["ops"][2]["entailed"] is True

    def test_structured_error_reply_keeps_connection(self, served):
        _, host, port = served
        with ReproClient(host, port) as client:
            bad = client.call("execute", check=False, query="On(")
            assert bad["ok"] is False and bad["error"]["type"]
            unknown = client.call("no-such-op", check=False)
            assert unknown["error"]["type"] == "PayloadError"
            # both errors consumed a seq and the connection still works
            assert client.ping()["pong"] is True

    def test_stats_op(self, served):
        _, host, port = served
        with ReproClient(host, port) as client:
            client.ping()
            stats = client.stats()
            assert stats["connections"] == 1
            assert stats["open_connections"] == 1
            # the stats op itself is counted only when its reply is
            # stamped, after the payload snapshot
            assert stats["requests"] >= 1
            assert stats["seq"] >= 1


# ---------------------------------------------------------------------------
# the concurrent-client differential


def _client_script(tid: int) -> list[dict]:
    """One client's op mix: reads, writes, and a guaranteed error."""
    mark = "abcd"[tid]
    item0, item1 = f"dev{mark}0", f"dev{mark}1"
    return [
        {"kind": "execute", "text": "On(s, lamp) & Off(t, lamp) & s < t"},
        {
            "kind": "assert",
            "text": f"On(s{mark}0, {item0}); Off(t{mark}0, {item0}); "
                    f"s{mark}0 < t{mark}0",
        },
        {"kind": "answers", "text": JOIN, "free": ["X"]},
        {"kind": "execute", "text": "On("},  # parse error, on purpose
        # chained after the first assert's timepoints: each client
        # adds one linear branch, keeping the database width (and so
        # the minimal-model enumeration cost) at the number of clients
        {
            "kind": "assert",
            "text": f"On(s{mark}1, {item1}); Off(t{mark}1, {item1}); "
                    f"t{mark}0 < s{mark}1; s{mark}1 < t{mark}1",
        },
        {"kind": "answers", "text": JOIN, "free": ["X"]},
        {"kind": "execute", "text": "On(s, heater)"},
    ]


def _run_script(host, port, tid, barrier, out, errors):
    try:
        with ReproClient(host, port) as client:
            barrier.wait(10)
            for spec in _client_script(tid):
                if spec["kind"] == "execute":
                    reply = client.call(
                        "execute", check=False, query=spec["text"]
                    )
                elif spec["kind"] == "answers":
                    reply = client.call(
                        "answers",
                        check=False,
                        query=spec["text"],
                        free_vars=spec["free"],
                    )
                else:
                    reply = client.call(
                        "assert", check=False, facts=spec["text"]
                    )
                out.append((reply["seq"], spec, _payload_of(reply)))
    except Exception as exc:  # pragma: no cover - surfaced in the test
        errors.append(exc)


def _replay_sequentially(spec: dict, session: Session) -> str:
    """What a sequential session answers for ``spec`` — as canonical JSON."""
    try:
        if spec["kind"] == "assert":
            text = spec["text"]
            names = scan_order_names(text) | session.db.order_constants
            fragment = parse_database(text, extra_order=names)
            mutation = Mutation("assert_facts", tuple(fragment.atoms()))
            mutation.apply(session)
            payload = {"kind": "assert_facts", "applied": len(mutation.atoms)}
        else:
            free = spec.get("free")
            free_vars = (
                tuple(objvar(n) for n in free) if free is not None else None
            )
            request = QueryRequest(
                parse_query(spec["text"], session.db),
                _SEMANTICS["fin"],
                "auto",
                free_vars=free_vars,
            )
            payload = _result_payload(request.prepare(session).execute())
        return json.dumps(payload, sort_keys=True)
    except Exception as exc:
        return json.dumps(
            {"error": {"type": type(exc).__name__, "message": str(exc)}},
            sort_keys=True,
        )


def _differential(host, port, clients: int) -> None:
    barrier = threading.Barrier(clients)
    traces: list[list] = [[] for _ in range(clients)]
    errors: list[Exception] = []
    threads = [
        threading.Thread(
            target=_run_script,
            args=(host, port, tid, barrier, traces[tid], errors),
        )
        for tid in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert not errors, errors

    merged = sorted(
        (item for trace in traces for item in trace), key=lambda it: it[0]
    )
    assert len(merged) == clients * len(_client_script(0))
    # seq numbers are the one global order: all distinct
    assert len({seq for seq, _, _ in merged}) == len(merged)

    replay = _session()
    for seq, spec, payload in merged:
        assert _replay_sequentially(spec, replay) == payload, (seq, spec)


class TestConcurrentDifferential:
    def test_concurrent_equals_sequential(self, served):
        _, host, port = served
        _differential(host, port, clients=4)

    def test_concurrent_equals_sequential_with_pool(self):
        thread = ServerThread(_session(), workers=2)
        try:
            host, port = thread.start()
            _differential(host, port, clients=3)
        finally:
            thread.shutdown()

    def test_pipelined_reads_batch(self, served):
        thread, host, port = served
        with ReproClient(host, port) as client:
            rids = [
                client.send(
                    "execute", query="On(s, lamp) & Off(t, lamp) & s < t"
                )
                for _ in range(64)
            ]
            for rid in rids:
                assert client.wait(rid)["entailed"] is True
            stats = client.stats()
        # the engine saw at least one multi-read run and batched it
        assert stats["read_batches"] >= 1
        assert stats["batched_reads"] >= 2


# ---------------------------------------------------------------------------
# protocol robustness


class TestProtocol:
    def test_malformed_body_gets_error_reply_connection_lives(self, served):
        _, host, port = served
        with ReproClient(host, port) as client:
            body = b"this is not json"
            client.send_raw(struct.pack("!I", len(body)) + body)
            frame = client.read_frame()
            assert frame["ok"] is False
            assert frame["error"]["type"] == "PayloadError"
            assert not frame.get("fatal")
            assert client.ping()["pong"] is True

    def test_non_object_body_gets_error_reply(self, served):
        _, host, port = served
        with ReproClient(host, port) as client:
            body = json.dumps([1, 2, 3]).encode()
            client.send_raw(struct.pack("!I", len(body)) + body)
            frame = client.read_frame()
            assert frame["error"]["type"] == "PayloadError"
            assert client.ping()["pong"] is True

    def test_oversized_frame_is_fatal(self, served):
        _, host, port = served
        with ReproClient(host, port) as client:
            client.send_raw(struct.pack("!I", MAX_FRAME + 1))
            frame = client.read_frame()
            assert frame["fatal"] is True
            assert frame["error"]["type"] == "FrameError"
            assert client.read_frame() is None  # server closed its side

    def test_server_survives_protocol_abuse(self, served):
        _, host, port = served
        with ReproClient(host, port) as abuser:
            abuser.send_raw(struct.pack("!I", MAX_FRAME + 1))
            abuser.read_frame()
        with ReproClient(host, port) as client:
            assert client.ping()["pong"] is True
            assert client.stats()["protocol_errors"] >= 1


# ---------------------------------------------------------------------------
# backpressure


class TestBackpressure:
    def test_pipelining_capped_at_max_inflight(self):
        thread = ServerThread(_session(), max_inflight=4)
        try:
            host, port = thread.start()
            with ReproClient(host, port) as client:
                rids = [
                    client.send(
                        "execute", query="On(s, lamp) & Off(t, lamp) & s < t"
                    )
                    for _ in range(100)
                ]
                for rid in rids:
                    client.wait(rid)
                stats = client.stats()
            assert stats["conn_peak_inflight"] <= 4
        finally:
            thread.shutdown()

    def test_slow_watch_consumer_is_dropped_not_buffered(self, served):
        import asyncio

        thread, host, port = served
        watcher = ReproClient(host, port)
        try:
            watcher.watch(JOIN, ["X"])
            # reach inside: shrink the outbox cap and push a burst of
            # events from the server loop without yielding, so the
            # writer task cannot drain in between — the shape a reader
            # that stopped consuming mid-flood produces
            (conn,) = [c for c in thread.server._conns if c.watches]
            conn._outbox_cap = 8

            async def _flood():
                for i in range(20):
                    conn.push({"event": "watch", "watch": 1, "noise": i})

            asyncio.run_coroutine_threadsafe(_flood(), thread._loop).result(10)
            assert conn.aborted
            with pytest.raises((ClientError, ProtocolError, OSError)):
                while True:  # drain whatever was in flight, then fail
                    if watcher.read_frame() is None:
                        raise ClientError("EOF")
            # the server survives and keeps serving everyone else
            with ReproClient(host, port) as client:
                assert client.ping()["pong"] is True
        finally:
            watcher.close()


# ---------------------------------------------------------------------------
# watch events


class TestWatch:
    def test_event_precedes_causing_write_and_shares_seq(self, served):
        _, host, port = served
        with ReproClient(host, port) as client:
            opened = client.watch(JOIN, ["X"])
            assert opened["answers"] == [["lamp"]]
            reply = client.assert_facts("Off(p4, heater); p2 < p4")
            events = client.take_events()
            assert len(events) == 1
            assert events[0]["added"] == [["heater"]]
            assert events[0]["removed"] == []
            assert events[0]["seq"] == reply["seq"]
            reply = client.retract_facts("Off(p4, heater)")
            events = client.take_events()
            assert events[0]["removed"] == [["heater"]]
            assert events[0]["seq"] == reply["seq"]

    def test_unwatch_stops_events(self, served):
        _, host, port = served
        with ReproClient(host, port) as client:
            wid = client.watch(JOIN, ["X"])["watch"]
            assert client.call("unwatch", watch=wid)["unwatched"] is True
            client.assert_facts("Off(p4, heater); p2 < p4")
            assert client.take_events() == []

    def test_other_connections_see_my_writes(self, served):
        _, host, port = served
        with ReproClient(host, port) as watcher, ReproClient(
            host, port
        ) as writer:
            watcher.watch(JOIN, ["X"])
            writer.assert_facts("Off(p4, heater); p2 < p4")
            # the event is on the watcher's socket; any blocking read
            # surfaces it (ping gives the read loop something to wait on)
            watcher.ping()
            events = watcher.take_events()
            assert events and events[0]["added"] == [["heater"]]


# ---------------------------------------------------------------------------
# graceful drain


class TestDrain:
    def test_queued_ops_answered_then_eof(self, served):
        thread, host, port = served
        client = ReproClient(host, port)
        try:
            rids = [
                client.send(
                    "execute", query="On(s, lamp) & Off(t, lamp) & s < t"
                )
                for _ in range(20)
            ]
            # first reply in hand: the server has accepted the
            # connection and its engine is working through the ops.
            # (A connection still in the TCP backlog when drain closes
            # the listener is unreachable by the server — that is what
            # client-side timeouts are for.)
            first = client.wait(rids[0], check=False)
            assert first["ok"] is True
            thread.shutdown()
            # every op the server read before closing gets an answer —
            # processed (ok) or refused with the structured Draining
            # error — in send order, then a clean EOF; nothing is
            # silently half-answered
            replies = []
            while True:
                frame = client.read_frame()
                if frame is None:
                    break
                replies.append(frame)
            for reply in replies:
                assert reply["ok"] is True or (
                    reply["error"]["type"] == "Draining"
                )
            assert [r["id"] for r in replies] == rids[1 : len(replies) + 1]
        finally:
            client.close()

    def test_drained_server_refuses_new_connections(self, served):
        thread, host, port = served
        with ReproClient(host, port) as client:
            client.ping()
        thread.shutdown()
        with pytest.raises(OSError):
            ReproClient(host, port, timeout=2.0)

    def test_drain_flushes_group_commit_wal(self, tmp_path):
        path = str(tmp_path / "serve.wal")
        session = _session()
        wal = WriteAheadLog(path, sync="group").attach(session)
        thread = ServerThread(session, wal=wal)
        try:
            host, port = thread.start()
            with ReproClient(host, port) as client:
                client.assert_facts("Off(p4, heater); p2 < p4")
                client.assert_facts("On(p5, fan); Off(p6, fan); p5 < p6")
        finally:
            thread.shutdown()
        recovered = Session.recover(path)
        assert recovered.size() == session.size()
        request = QueryRequest(
            parse_query(JOIN, recovered.db),
            _SEMANTICS["fin"],
            "auto",
            free_vars=(objvar("X"),),
        )
        payload = _result_payload(request.prepare(recovered).execute())
        assert payload["answers"] == [["fan"], ["heater"], ["lamp"]]


# ---------------------------------------------------------------------------
# fault injection: server.conn.drop


class TestConnDropFault:
    def test_dropped_client_sees_eof_server_stays_up(self, served):
        thread, host, port = served
        faults.install([FaultRule(faults.SITE_CONN_DROP)])
        victim = ReproClient(host, port)
        try:
            with pytest.raises((ClientError, ProtocolError, OSError)):
                victim.ping()
        finally:
            victim.close()
        faults.reset()
        with ReproClient(host, port) as client:
            assert client.ping()["pong"] is True
            stats = client.stats()
            assert stats["conn_drops"] == 1

    def test_env_spec_names_the_site(self):
        rules = faults.parse_spec("server.conn.drop")
        assert [r.site for r in rules] == [faults.SITE_CONN_DROP]
