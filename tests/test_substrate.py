"""Tests for the from-scratch digraph and matching substrates."""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.substrate.digraph import Digraph
from repro.substrate.matching import (
    hopcroft_karp,
    koenig_vertex_cover,
    maximum_antichain,
)


def random_digraph(rng: random.Random, n: int, p: float) -> Digraph:
    g = Digraph()
    for i in range(n):
        g.add_vertex(i)
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < p:
                g.add_edge(i, j)
    return g


def random_dag(rng: random.Random, n: int, p: float) -> Digraph:
    g = Digraph()
    for i in range(n):
        g.add_vertex(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


class TestDigraph:
    def test_basic_ops(self):
        g = Digraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert g.successors("a") == {"b"}
        assert g.predecessors("c") == {"b"}
        assert g.sources() == {"a"}
        assert g.sinks() == {"c"}
        g.remove_vertex("b")
        assert g.vertices == {"a", "c"}
        assert g.successors("a") == set()

    def test_reachability(self):
        g = Digraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_vertex(4)
        assert g.reachable_from([1]) == {1, 2, 3}
        assert g.reachable_from([4]) == {4}

    def test_topological_order(self):
        rng = random.Random(0)
        for _ in range(30):
            g = random_dag(rng, rng.randrange(0, 8), 0.4)
            order = g.topological_order()
            position = {v: i for i, v in enumerate(order)}
            for u, v in g.edges():
                assert position[u] < position[v]

    def test_cycle_detection(self):
        g = Digraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert not g.is_acyclic()
        with pytest.raises(ValueError):
            g.topological_order()

    def test_scc_matches_bruteforce(self):
        rng = random.Random(1)
        for _ in range(40):
            g = random_digraph(rng, rng.randrange(1, 7), 0.3)
            sccs = g.strongly_connected_components()
            # partition check
            union = set()
            for c in sccs:
                assert not (union & c)
                union |= c
            assert union == g.vertices
            # mutual reachability check
            reach = {v: g.reachable_from([v]) for v in g.vertices}
            for c in sccs:
                for a in c:
                    for b in c:
                        assert b in reach[a]
            for c1 in sccs:
                for c2 in sccs:
                    if c1 is c2:
                        continue
                    a, b = next(iter(c1)), next(iter(c2))
                    assert not (b in reach[a] and a in reach[b])

    def test_transitive_closure(self):
        g = Digraph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        closure = g.transitive_closure()
        assert closure[1] == {2, 3}
        assert closure[3] == set()


class TestMatching:
    def brute_force_matching(self, left, adjacency) -> int:
        best = 0
        edges = [(u, v) for u in left for v in adjacency.get(u, ())]
        for r in range(len(edges), 0, -1):
            if r <= best:
                break
            for combo in combinations(edges, r):
                ls = [e[0] for e in combo]
                rs = [e[1] for e in combo]
                if len(set(ls)) == r and len(set(rs)) == r:
                    best = max(best, r)
                    break
        return best

    def test_hopcroft_karp_random(self):
        rng = random.Random(2)
        for _ in range(40):
            n_left, n_right = rng.randrange(0, 5), rng.randrange(0, 5)
            left = [f"l{i}" for i in range(n_left)]
            adjacency = {
                u: [f"r{j}" for j in range(n_right) if rng.random() < 0.4]
                for u in left
            }
            fast = len(hopcroft_karp(left, adjacency))
            slow = self.brute_force_matching(left, adjacency)
            assert fast == slow

    def test_koenig_cover_covers_all_edges(self):
        rng = random.Random(3)
        for _ in range(40):
            left = [f"l{i}" for i in range(rng.randrange(1, 5))]
            adjacency = {
                u: [f"r{j}" for j in range(4) if rng.random() < 0.4]
                for u in left
            }
            matching = hopcroft_karp(left, adjacency)
            cl, cr = koenig_vertex_cover(left, adjacency, matching)
            for u in left:
                for v in adjacency[u]:
                    assert u in cl or v in cr
            assert len(cl) + len(cr) == len(matching)

    def test_maximum_antichain_on_chains(self):
        # two disjoint chains of length 3: max antichain = 2
        reach = {
            "a1": {"a2", "a3"}, "a2": {"a3"}, "a3": set(),
            "b1": {"b2", "b3"}, "b2": {"b3"}, "b3": set(),
        }
        ac = maximum_antichain(reach.keys(), reach)
        assert len(ac) == 2
