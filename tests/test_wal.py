"""Differential tests for the write-ahead log and crash recovery.

The load-bearing property: a ``SIGKILL`` at *any* kill point — after
each mutation class, mid-compaction (either stage), mid-record-write —
leaves a WAL from which :func:`repro.engine.wal.recover` rebuilds a
session whose atoms, generations and query results are byte-for-byte
those of a session that replayed the same mutation prefix uninterrupted.
Plus: the log as a change feed (:class:`~repro.engine.wal.WalFollower`
tailing a writer across compaction), torn-tail truncation, and
corruption detection.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import random
import signal

import pytest

from repro.api import Session
from repro.core.atoms import OrderAtom, ProperAtom, Rel, lt
from repro.core.sorts import obj, objvar, ordc, ordvar
from repro.core.query import ConjunctiveQuery
from repro.engine import MaterializedView, QueryRequest, execute_many
from repro.engine.wal import (
    _FRAME,
    _HEADER,
    WalError,
    WalFollower,
    WalMark,
    WriteAheadLog,
    read_log,
    recover,
    snap_path,
)
from repro.engine import faults
from repro.workloads.generators import mutation_class_stream

SEED = 11
ROUNDS = 2


def _stream():
    return mutation_class_stream(random.Random(SEED), n_rounds=ROUNDS)


def _oracle(prefix: int) -> Session:
    """The never-crashed session after ``prefix`` ops."""
    db, ops = _stream()
    session = Session(db)
    for op in ops[:prefix]:
        op.apply(session)
    return session


def _probe_requests():
    t1, t2 = ordvar("t1"), ordvar("t2")
    x = objvar("x")
    return [
        QueryRequest(
            ConjunctiveQuery.from_atoms(
                [ProperAtom("P", (t1,)), OrderAtom(t1, Rel.LT, t2)]
            )
        ),
        QueryRequest(ConjunctiveQuery.from_atoms([ProperAtom("Zero", ())])),
        QueryRequest(
            ConjunctiveQuery.from_atoms([ProperAtom("Tag", (x,))]),
            free_vars=(x,),
        ),
    ]


def _assert_equal_state(recovered: Session, oracle: Session) -> None:
    assert recovered._proper == oracle._proper
    assert recovered._order == oracle._order
    assert recovered._gens() == oracle._gens()
    probes = _probe_requests()
    assert execute_many(recovered, probes) == execute_many(oracle, probes)


def _writer_child(path: str, prefix: int, compact_every, fault_spec: str,
                  ready) -> None:
    """Apply ``prefix`` ops under a WAL, then die without warning.

    ``sync="flush"`` reaches the kernel page cache, which survives
    ``SIGKILL`` (the durability level these tests assert); ``fsync``
    would only additionally cover power loss.
    """
    if fault_spec:
        faults.install(faults.parse_spec(fault_spec))
    db, ops = _stream()
    session = Session(db)
    wal = WriteAheadLog(path, sync="flush", compact_every=compact_every)
    wal.attach(session)
    try:
        for op in ops[:prefix]:
            op.apply(session)
    except faults.InjectedCrash:
        pass  # the simulated crash point; die for real below
    ready.send(session._gens())
    ready.close()
    os.kill(os.getpid(), signal.SIGKILL)


def _run_killed_writer(tmp_path, prefix, compact_every=None, fault_spec=""):
    """Fork a writer, let it SIGKILL itself after ``prefix`` ops."""
    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe()
    path = str(tmp_path / "crash.wal")
    proc = ctx.Process(
        target=_writer_child,
        args=(path, prefix, compact_every, fault_spec, child),
    )
    proc.start()
    child.close()
    assert parent.poll(30), "writer child never reached its kill point"
    gens = parent.recv()
    proc.join(timeout=30)
    assert proc.exitcode == -signal.SIGKILL
    return path, gens


class TestRoundtrip:
    def test_recover_equals_live_session(self, tmp_path):
        db, ops = _stream()
        session = Session(db)
        with WriteAheadLog(str(tmp_path / "s.wal"), sync="flush") as wal:
            wal.attach(session)
            for op in ops:
                op.apply(session)
        _assert_equal_state(recover(str(tmp_path / "s.wal")), session)

    def test_session_recover_classmethod(self, tmp_path):
        session = Session()
        path = str(tmp_path / "s.wal")
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
        recovered = Session.recover(path)
        assert recovered._proper == session._proper

    def test_compaction_preserves_state_and_truncates_log(self, tmp_path):
        db, ops = _stream()
        session = Session(db)
        path = str(tmp_path / "s.wal")
        with WriteAheadLog(path, sync="flush", compact_every=3) as wal:
            wal.attach(session)
            for op in ops:
                op.apply(session)
            _base, _clean, records = read_log(path)
            assert len(records) < len(ops)  # compaction kept folding
        _assert_equal_state(recover(path), session)

    def test_reattach_continues_log(self, tmp_path):
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
        second = recover(path)
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(second)
            second.assert_facts(ProperAtom("Tag", (obj("b"),)))
        recovered = recover(path)
        assert recovered._proper == second._proper
        assert recovered._gens() == second._gens()

    def test_sync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path / "s.wal"), sync="sometimes")
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path / "s.wal"), compact_every=0)


class TestTornAndCorrupt:
    def test_torn_tail_truncated_on_recover(self, tmp_path):
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
        with open(path, "ab") as fh:
            fh.write(b"\x99\x00\x00\x00\xde\xad\xbe\xefhalf a record")
        recovered = recover(path)
        assert recovered._proper == session._proper

    def test_torn_tail_truncated_on_reattach(self, tmp_path, caplog):
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
        size = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(b"\x07")
        second = recover(path)
        with caplog.at_level("WARNING", logger="repro.engine.wal"):
            with WriteAheadLog(path, sync="flush") as wal:
                wal.attach(second)
                second.assert_facts(ProperAtom("Tag", (obj("b"),)))
        assert "torn WAL tail" in caplog.text
        assert recover(path)._proper == second._proper
        assert os.path.getsize(path) > size  # appended past the clean tail

    def test_corrupt_record_mid_log_truncates_rest(self, tmp_path):
        # flip a byte in the FIRST record: it and everything after it
        # are gone, but recovery still yields the snapshot state.
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            session.assert_facts(ProperAtom("Tag", (obj("b"),)))
        raw = bytearray(pathlib.Path(path).read_bytes())
        raw[30] ^= 0xFF  # inside the first record's payload
        pathlib.Path(path).write_bytes(raw)
        recovered = recover(path)
        assert recovered._proper == set()  # the base snapshot's state

    def test_bad_snapshot_checksum_raises(self, tmp_path):
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
        snap = pathlib.Path(snap_path(path))
        raw = bytearray(snap.read_bytes())
        raw[-1] ^= 0xFF
        snap.write_bytes(raw)
        with pytest.raises(WalError):
            recover(path)

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(WalError):
            recover(str(tmp_path / "nothing.wal"))


class TestKillPoints:
    """SIGKILL after every mutation class; recovery must be exact."""

    N_OPS = len(_stream()[1])

    @pytest.mark.parametrize("prefix", list(range(N_OPS + 1)))
    def test_sigkill_after_each_mutation(self, tmp_path, prefix):
        path, gens = _run_killed_writer(tmp_path, prefix)
        recovered = recover(path)
        assert recovered._gens() == gens  # nothing acked was lost
        _assert_equal_state(recovered, _oracle(prefix))

    @pytest.mark.parametrize("prefix", [3, N_OPS])
    def test_sigkill_with_periodic_compaction(self, tmp_path, prefix):
        path, _gens = _run_killed_writer(tmp_path, prefix, compact_every=2)
        _assert_equal_state(recover(path), _oracle(prefix))

    @pytest.mark.parametrize("stage", [0, 1])
    def test_sigkill_mid_compaction(self, tmp_path, stage):
        # ops[:5] yield 4 effective records (op 3 is a no-op under seed
        # 11), so compact_every=4 triggers compaction on the 5th op; the
        # injected crash aborts it at the given stage and the child dies
        # by SIGKILL in that half-compacted state (stage 1 = snapshot
        # replaced, log NOT truncated: replay must skip the stale
        # records by epoch).  after=1 skips the attach-time snapshot
        # write, which shares the fault site.
        path, _gens = _run_killed_writer(
            tmp_path, 5, compact_every=4,
            fault_spec=f"wal.compact.crash:stage={stage}:after=1",
        )
        _assert_equal_state(recover(path), _oracle(5))

    def test_sigkill_torn_final_record(self, tmp_path):
        # the 4th effective record (op index 4) is written only halfway;
        # recovery yields the state before it — which under seed 11 is
        # the 4-op prefix (op 3 is a no-op)
        path, _gens = _run_killed_writer(
            tmp_path, 5, fault_spec="wal.torn_write:after=3",
        )
        size = os.path.getsize(path)
        _base, clean, _records = read_log(path)
        assert clean < size  # a torn tail really is on disk
        _assert_equal_state(recover(path), _oracle(4))


class TestChangeFeed:
    def test_follower_tracks_writer(self, tmp_path):
        path = str(tmp_path / "s.wal")
        db, ops = _stream()
        session = Session(db)
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            follower = WalFollower(path)
            assert follower.poll() == 0
            events = []
            session.add_observer(events.append)
            for op in ops:
                op.apply(session)
            # one record per effective mutation, applied one-for-one —
            # NOT via the (full-recovery) rebase path, which compaction
            # alone should trigger
            assert follower.poll() == len(events)
            _assert_equal_state(follower.session, session)
            assert follower.poll() == 0  # nothing new: no work, no rebase

    def test_follower_rebases_over_compaction(self, tmp_path):
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            follower = WalFollower(path)
            session.assert_facts(ProperAtom("Tag", (obj("b"),)))
            wal.compact()
            session.assert_facts(ProperAtom("Tag", (obj("c"),)))
            assert follower.poll() >= 1
            assert follower.session._proper == session._proper
            assert follower.session._gens() == session._gens()

    def test_follower_drives_materialized_view(self, tmp_path):
        # the WAL as the bus, MutationEvent observers as the trigger
        # layer: a view registered on the follower's replica stays
        # current across the process-boundary feed
        path = str(tmp_path / "s.wal")
        x = objvar("x")
        query = ConjunctiveQuery.from_atoms([ProperAtom("Tag", (x,))])
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            follower = WalFollower(path)
            view = MaterializedView(follower.session, query, (x,))
            assert view.answers() == {("a",)}
            session.assert_facts(ProperAtom("Tag", (obj("b"),)))
            session.retract_facts(ProperAtom("Tag", (obj("a"),)))
            follower.poll()
            assert view.answers() == {("b",)}


class TestEventAtoms:
    def test_mutation_events_carry_added_and_removed(self):
        session = Session()
        events = []
        session.add_observer(events.append)
        fact = ProperAtom("Tag", (obj("a"),))
        edge = lt(ordc("u"), ordc("v"))
        session.assert_facts(fact)
        session.assert_order(edge)
        session.retract_order(edge)
        session.retract_facts(fact)
        assert [e.added for e in events] == [(fact,), (edge,), (), ()]
        assert [e.removed for e in events] == [(), (), (edge,), (fact,)]

    def test_noop_mutations_log_nothing(self, tmp_path):
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            fact = ProperAtom("Tag", (obj("a"),))
            session.assert_facts(fact)
            session.assert_facts(fact)  # no-op: already present
            session.retract_facts(ProperAtom("Tag", (obj("zz"),)))  # no-op
        _base, _clean, records = read_log(path)
        assert len(records) == 1


class TestGroupCommit:
    """``sync="group"``: one fsync per commit window, not per append."""

    def test_recovery_matches_oracle(self, tmp_path):
        path = str(tmp_path / "g.wal")
        db, ops = _stream()
        session = Session(db)
        with WriteAheadLog(path, sync="group") as wal:
            wal.attach(session)
            for op in ops:
                op.apply(session)
        _assert_equal_state(recover(path), _oracle(len(ops)))

    def test_open_window_amortizes_fsyncs(self, tmp_path):
        path = str(tmp_path / "g.wal")
        session = Session()
        with WriteAheadLog(
            path, sync="group", group_window=60.0, group_max=10_000
        ) as wal:
            wal.attach(session)
            base = wal.fsync_count
            for i in range(50):
                session.assert_facts(ProperAtom("Tag", (obj(f"a{i}"),)))
            # every append flushed, none fsync'd: the window is open
            assert wal.fsync_count == base
            wal.close()
            # close is a barrier: the whole window costs ONE fsync
            assert wal.fsync_count == base + 1
        assert recover(path)._proper == session._proper

    def test_group_max_closes_the_window_early(self, tmp_path):
        path = str(tmp_path / "g.wal")
        session = Session()
        with WriteAheadLog(
            path, sync="group", group_window=60.0, group_max=10
        ) as wal:
            wal.attach(session)
            base = wal.fsync_count
            for i in range(10):
                session.assert_facts(ProperAtom("Tag", (obj(f"a{i}"),)))
            assert wal.fsync_count == base + 1

    def test_window_timer_fires_without_further_writes(self, tmp_path):
        import time

        path = str(tmp_path / "g.wal")
        session = Session()
        with WriteAheadLog(
            path, sync="group", group_window=0.02, group_max=10_000
        ) as wal:
            wal.attach(session)
            base = wal.fsync_count
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            deadline = time.monotonic() + 10
            while wal.fsync_count == base and time.monotonic() < deadline:
                time.sleep(0.005)
            # bounded power-loss staleness: the timer alone fsync'd
            assert wal.fsync_count == base + 1

    def test_compact_is_a_barrier(self, tmp_path):
        path = str(tmp_path / "g.wal")
        session = Session()
        with WriteAheadLog(
            path, sync="group", group_window=60.0, group_max=10_000
        ) as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            assert wal._pending == 1
            wal.compact()
            assert wal._pending == 0  # nothing owed to the dead window
        assert recover(path)._proper == session._proper

    def test_knob_validation(self, tmp_path):
        path = str(tmp_path / "g.wal")
        with pytest.raises(ValueError):
            WriteAheadLog(path, sync="turbo")
        with pytest.raises(ValueError):
            WriteAheadLog(path, sync="group", group_window=0)
        with pytest.raises(ValueError):
            WriteAheadLog(path, sync="group", group_max=0)


class TestFollowerFastPath:
    """A quiescent log costs ``poll()`` one stat — no open, no re-read."""

    def test_quiescent_poll_never_opens_the_file(
        self, tmp_path, monkeypatch
    ):
        import builtins

        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            follower = WalFollower(path)
            assert follower.poll() == 0
            real_open = builtins.open
            opened = []

            def spy(file, *args, **kwargs):
                opened.append(file)
                return real_open(file, *args, **kwargs)

            monkeypatch.setattr(builtins, "open", spy)
            assert follower.poll() == 0
            assert opened == []  # fast path: stat only
            monkeypatch.setattr(builtins, "open", real_open)
            # growth wakes the slow path back up
            session.assert_facts(ProperAtom("Tag", (obj("b"),)))
            assert follower.poll() == 1
            assert follower.session._proper == session._proper

    def test_compaction_swaps_the_inode(self, tmp_path):
        # what makes the (size, inode) fast-path check sound: the log
        # can only keep its size across poll()s by being byte-identical
        # (append-only) — unless compaction replaced it, which is
        # visible as a new inode from the same single stat
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            before = os.stat(path).st_ino
            wal.compact()
            assert os.stat(path).st_ino != before

    def test_same_size_compaction_still_detected(self, tmp_path):
        # the regression the inode check exists for: refill the log to
        # exactly its pre-compaction size and poll must still rebase
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            follower = WalFollower(path)
            assert follower.poll() == 0
            size_before = os.path.getsize(path)
            wal.compact()
            # same-length record as the one the follower already saw
            session.assert_facts(ProperAtom("Tag", (obj("b"),)))
            assert os.path.getsize(path) == size_before
            assert follower.poll() >= 1
            assert follower.session._proper == session._proper
            assert follower.session._gens() == session._gens()


class TestMarks:
    """Seq marks: stateless records for replica read-your-writes."""

    def test_follower_folds_marks_without_counting_them(self, tmp_path):
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            follower = WalFollower(path)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            wal.append_mark(7, 123.5)
            # the delta counts toward poll()'s return, the mark does not
            # — but both are folded in by the same scan
            assert follower.poll() == 1
            assert follower.applied_seq == 7
            assert follower.last_mark_wall == 123.5
            wal.append_mark(9)
            assert follower.poll() == 0
            assert follower.applied_seq == 9
            # a stale seq never regresses the token; the wall stamp is
            # liveness evidence either way and still moves
            wal.append_mark(3, 1.0)
            assert follower.poll() == 0
            assert follower.applied_seq == 9
            assert follower.last_mark_wall == 1.0

    def test_marks_are_invisible_to_recovery_and_reattach(self, tmp_path):
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            wal.append_mark(4)
            wal.append_mark(5)
        _assert_equal_state(recover(path), session)
        _, _, records = read_log(path)
        assert [r.seq for r in records if isinstance(r, WalMark)] == [4, 5]
        # a fresh follower folds historical marks at load time
        assert WalFollower(path).applied_seq == 5
        # marks have their own compaction counter: re-attach sees one
        # pending mutation record, not three, and recovers the seq
        # high-water from the surviving marks
        wal2 = WriteAheadLog(path, sync="flush")
        wal2.attach(session)
        assert wal2._since_compact == 1
        assert wal2.last_mark_seq == 5
        wal2.close()

    def test_compaction_preserves_the_mark_high_water(self, tmp_path):
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            wal.append_mark(9)
            wal.compact()
            # the fresh log is seeded with exactly the high-water mark,
            # so a restart (re-attach/recover) never resets the seq
            # space below what followers have already ratcheted to
            _, _, records = read_log(path)
            assert [r.seq for r in records if isinstance(r, WalMark)] == [9]
        _assert_equal_state(recover(path), session)
        assert WalFollower(path).applied_seq == 9
        wal2 = WriteAheadLog(path, sync="flush")
        wal2.attach(session)
        assert wal2.last_mark_seq == 9
        wal2.close()

    def test_marks_trigger_compaction_and_bound_an_idle_log(self, tmp_path):
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush", compact_every=4) as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            # the 4th mark hits compact_every: the pending mutation is
            # folded into the snapshot and the log resets
            for seq in range(1, 5):
                wal.append_mark(seq)
            assert wal._since_compact == 0
            _, _, records = read_log(path)
            assert [r.seq for r in records if isinstance(r, WalMark)] == [4]
            assert not any(not isinstance(r, WalMark) for r in records)
            # an idle "heartbeating" primary keeps cycling the log —
            # marks-only resets, no snapshot rewrite — instead of
            # growing it one mark per interval forever
            snap_mtime = os.path.getmtime(snap_path(path))
            bound = os.path.getsize(path)
            for seq in range(5, 25):
                wal.append_mark(seq)
                bound = max(bound, os.path.getsize(path))
            _, _, records = read_log(path)
            marks = [r.seq for r in records if isinstance(r, WalMark)]
            assert len(marks) <= 4
            assert max(marks) == 24
            assert os.path.getmtime(snap_path(path)) == snap_mtime
            assert bound <= _HEADER.size + 5 * (
                _FRAME.size + 64
            )  # ~5 tiny mark frames, never unbounded
        _assert_equal_state(recover(path), session)

    def test_rebase_keeps_the_applied_seq_high_water(self, tmp_path):
        path = str(tmp_path / "s.wal")
        session = Session()
        with WriteAheadLog(path, sync="flush") as wal:
            wal.attach(session)
            session.assert_facts(ProperAtom("Tag", (obj("a"),)))
            wal.append_mark(9)
            follower = WalFollower(path)
            assert follower.applied_seq == 9
            wal.compact()  # resets the log, re-seeding the high-water mark
            session.assert_facts(ProperAtom("Tag", (obj("b"),)))
            follower.poll()
            # the token survives the rebase
            assert follower.rebases == 1
            assert follower.applied_seq == 9
            assert follower.session._proper == session._proper

    def test_append_mark_needs_an_open_log(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "s.wal"))
        with pytest.raises(WalError):
            wal.append_mark(1)


class TestFollowerTornTail:
    """A follower racing a writer mid-append must stop at the last
    intact frame, never fail, and pick up the rest on a later poll."""

    def test_poll_survives_byte_by_byte_partial_append(self, tmp_path):
        path = str(tmp_path / "s.wal")
        session = Session()
        wal = WriteAheadLog(path, sync="flush")
        wal.attach(session)
        follower = WalFollower(path)
        session.assert_facts(ProperAtom("Tag", (obj("a"),)))
        session.assert_facts(ProperAtom("Tag", (obj("b"),)))
        wal.close()
        raw = pathlib.Path(path).read_bytes()
        tail = raw[_HEADER.size:]
        first_len, _crc = _FRAME.unpack_from(tail, 0)
        first_end = _FRAME.size + first_len
        # rewind to the bare header (the follower saw neither record;
        # truncation keeps the inode, so its stat cache stays honest)
        # and replay the two frames one byte at a time
        with open(path, "r+b") as fh:
            fh.truncate(_HEADER.size)
            assert follower.poll() == 0
            fh.seek(_HEADER.size)
            for i in range(len(tail)):
                fh.write(tail[i : i + 1])
                fh.flush()
                applied = follower.poll()
                if i + 1 in (first_end, len(tail)):
                    assert applied == 1  # a frame just became intact
                else:
                    assert applied == 0  # torn mid-frame: wait, not fail
        assert follower.session._proper == session._proper
        assert follower.session._gens() == session._gens()

    def test_init_reads_snapshot_and_log_once_consistently(
        self, tmp_path, monkeypatch
    ):
        # Regression: follower init used to read the log twice (once
        # inside recover, once for its tail offset); a record appended
        # between the reads was skipped forever.  Simulate that
        # interleaving by appending from inside the (now single)
        # read_log call.
        import repro.engine.wal as wal_mod

        path = str(tmp_path / "s.wal")
        session = Session()
        wal = WriteAheadLog(path, sync="flush").attach(session)
        session.assert_facts(ProperAtom("Tag", (obj("a"),)))
        real_read_log = wal_mod.read_log
        raced = []

        def racy_read_log(p):
            result = real_read_log(p)
            if not raced:
                raced.append(True)
                session.assert_facts(ProperAtom("Tag", (obj("b"),)))
            return result

        monkeypatch.setattr(wal_mod, "read_log", racy_read_log)
        follower = WalFollower(path)
        monkeypatch.undo()
        # Tag(b) landed after the init read: not visible yet, but the
        # cached offset must not have skipped past it
        assert ProperAtom("Tag", (obj("b"),)) not in follower.session._proper
        assert follower.poll() == 1
        _assert_equal_state(follower.session, session)
        wal.close()


class TestFollowerCompactStress:
    """Tail a writer that compacts concurrently: the replica may lag,
    but every state it shows must be one the writer actually had."""

    def test_follower_never_diverges_under_compaction_loop(self, tmp_path):
        import threading
        import time

        path = str(tmp_path / "s.wal")
        db, ops = mutation_class_stream(random.Random(23), n_rounds=3)
        writer = Session(db)
        lock = threading.Lock()

        def snap(session):
            return frozenset(session._proper), frozenset(session._order)

        history = {snap(writer)}
        wal = WriteAheadLog(path, sync="flush")
        wal.attach(writer)
        follower = WalFollower(path)
        done = threading.Event()

        def run_writer():
            try:
                for i, op in enumerate(ops):
                    op.apply(writer)
                    with lock:
                        history.add(snap(writer))
                    if i % 3 == 2:
                        wal.compact()
            finally:
                done.set()

        thread = threading.Thread(target=run_writer)
        thread.start()
        while not done.is_set():
            follower.poll()
            state = snap(follower.session)
            # a record hits the disk (inside op.apply) a moment before
            # the writer thread records the new state: allow that window
            for _ in range(500):
                with lock:
                    if state in history:
                        break
                time.sleep(0.002)
            else:
                raise AssertionError(
                    "follower showed a state the writer never had"
                )
        thread.join(30)
        wal.close()
        while follower.poll():
            pass
        _assert_equal_state(follower.session, writer)
