"""Tests for the Section 6 wqo machinery and the constructive word basis."""

from __future__ import annotations

import random

import pytest

from helpers import naive_entails_query
from repro.core.database import LabeledDag
from repro.core.query import ConjunctiveQuery, DisjunctiveQuery
from repro.flexiwords.flexiword import FlexiWord, all_words
from repro.flexiwords.subword import flexi_le, is_subword
from repro.flexiwords.wqo import (
    conjunctive_basis,
    dominates,
    entails_via_basis,
    find_dominating_pair,
    is_wqo_antichain,
    minimal_superwords,
    paths_dominated,
    word_basis,
    word_entails_via_basis,
)
from repro.workloads.generators import (
    random_conjunctive_monadic_query,
    random_disjunctive_monadic_query,
    random_flexiword,
    random_labeled_dag,
)


class TestDominanceOrder:
    def test_reflexive_and_transitive_samples(self):
        rng = random.Random(0)
        words = [random_flexiword(rng, rng.randrange(0, 4)) for _ in range(30)]
        for p in words:
            assert flexi_le(p, p)
        comparable = [
            (p, q) for p in words for q in words if flexi_le(p, q)
        ]
        for p, q in comparable[:200]:
            for r in words:
                if flexi_le(q, r):
                    assert flexi_le(p, r)

    def test_lemma_6_4_monotonicity(self):
        """d1 |= Phi and d1 <= d2 imply d2 |= Phi."""
        rng = random.Random(1)
        checked = 0
        while checked < 60:
            d1 = random_labeled_dag(rng, rng.randrange(0, 4), prefix="a")
            d2 = random_labeled_dag(rng, rng.randrange(0, 4), prefix="b")
            if not dominates(d1, d2):
                continue
            q = random_disjunctive_monadic_query(rng, 2, 2)
            if naive_entails_query(d1, q):
                assert naive_entails_query(d2, q)
            checked += 1

    def test_no_long_antichains(self):
        """Empirical wqo check: random length-40 sequences over a 2-predicate
        alphabet with words of length <= 3 always contain a dominating pair."""
        rng = random.Random(2)
        for _ in range(20):
            seq = [
                random_flexiword(rng, rng.randrange(0, 4), preds=("P", "Q"))
                for _ in range(40)
            ]
            assert find_dominating_pair(seq) is not None

    def test_antichain_detector(self):
        a = FlexiWord.parse("{P}")
        b = FlexiWord.parse("{Q}")
        assert is_wqo_antichain([a, b])
        assert not is_wqo_antichain([a, FlexiWord.parse("{P} < {P}")])


class TestConjunctiveBasis:
    @pytest.mark.parametrize("seed", range(8))
    def test_basis_evaluation_matches_bruteforce(self, seed):
        rng = random.Random(100 + seed)
        for _ in range(30):
            dag = random_labeled_dag(rng, rng.randrange(0, 5))
            q = random_conjunctive_monadic_query(rng, rng.randrange(0, 4))
            normalized = q.normalized()
            if normalized is None:
                continue
            expected = naive_entails_query(dag, q)
            assert entails_via_basis(dag, q) == expected

    def test_basis_is_minimal_member(self):
        rng = random.Random(3)
        for _ in range(20):
            q = random_conjunctive_monadic_query(rng, rng.randrange(1, 4))
            normalized = q.normalized()
            if normalized is None:
                continue
            basis = conjunctive_basis(q)
            # D_Phi itself entails Phi ...
            assert naive_entails_query(basis, q)
            # ... and is dominated by every entailing database we can find.
            for _ in range(10):
                d = random_labeled_dag(rng, rng.randrange(0, 4))
                if naive_entails_query(d, q):
                    assert dominates(basis, d)


class TestMinimalSuperwords:
    def test_le_run_absorbed_in_one_letter(self):
        p = FlexiWord.parse("{A} <= {B}")
        words = minimal_superwords([p])
        assert (frozenset({"A", "B"}),) in words
        assert (frozenset({"A"}), frozenset({"B"})) in words

    def test_two_cross_patterns(self):
        p1 = FlexiWord.parse("{A} < {B}")
        p2 = FlexiWord.parse("{B} < {A}")
        words = minimal_superwords([p1, p2])
        assert (frozenset({"A", "B"}), frozenset({"A", "B"})) in words
        assert (frozenset({"A"}), frozenset({"B"}), frozenset({"A"})) in words

    def test_all_results_satisfy_and_are_minimal(self):
        rng = random.Random(4)
        from repro.flexiwords.subword import flexi_entails

        for _ in range(25):
            paths = [
                random_flexiword(rng, rng.randrange(1, 3), preds=("A", "B"))
                for _ in range(rng.randrange(1, 3))
            ]
            for w in minimal_superwords(paths):
                fw = FlexiWord.word(w)
                assert all(flexi_entails(fw, p) for p in paths)


class TestWordBasis:
    @pytest.mark.parametrize("seed", range(6))
    def test_basis_decides_all_small_words(self, seed):
        """Exhaustive check: basis evaluation == direct evaluation on every
        word of length <= 3 over a 2-predicate alphabet."""
        rng = random.Random(200 + seed)
        q = random_disjunctive_monadic_query(
            rng, rng.randrange(1, 3), rng.randrange(1, 3), preds=("A", "B"),
            le_prob=0.5,
        )
        basis = word_basis(q)
        for w in all_words(("A", "B"), rng.randrange(0, 4)):
            dag = LabeledDag.from_flexiword(w)
            expected = naive_entails_query(dag, q)
            got = word_entails_via_basis(w.letters, basis)
            assert got == expected, f"word={w} q={q} basis={basis}"

    def test_basis_elements_are_pairwise_incomparable(self):
        rng = random.Random(5)
        for _ in range(10):
            q = random_disjunctive_monadic_query(rng, 2, 2, preds=("A", "B"))
            basis = sorted(word_basis(q), key=repr)
            for i, a in enumerate(basis):
                for j, b in enumerate(basis):
                    if i != j:
                        assert not is_subword(a, b)
